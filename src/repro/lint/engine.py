"""The reprolint rule engine: rule registry, suppression, file walking.

A rule is a class with a ``rule_id`` (``RLxxx``), a default severity, and
a :meth:`Rule.check` generator that inspects a parsed module and yields
findings.  The engine parses each file once, hands every enabled rule the
same :class:`ModuleContext`, and filters out findings silenced by
``# reprolint: disable=RLxxx`` comments before reporting.

Rules can restrict themselves to a set of top-level ``repro`` packages
via :attr:`Rule.packages`; the engine derives the package from the path
segment after the last ``repro`` directory, so fixtures can opt into a
scope by using synthetic paths like ``repro/sim/fixture.py``.
"""

from __future__ import annotations

import abc
import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Type

from repro.lint.findings import Finding, Severity

#: Inline suppression: ``# reprolint: disable=RL001`` or ``disable=RL001,RL003``.
_SUPPRESS_RE = re.compile(r"#\s*reprolint:\s*disable=([A-Z0-9,\s]+)")
#: Whole-file suppression: ``# reprolint: disable-file=RL005`` anywhere.
_SUPPRESS_FILE_RE = re.compile(r"#\s*reprolint:\s*disable-file=([A-Z0-9,\s]+)")
#: Next-line suppression: ``# reprolint: disable-next-line=RL001`` silences
#: the following physical line (useful when the offending line has no room).
_SUPPRESS_NEXT_RE = re.compile(r"#\s*reprolint:\s*disable-next-line=([A-Z0-9,\s]+)")
_RULE_ID_RE = re.compile(r"RL\d{3}")

#: Rule id used for files that fail to parse (not a registered rule).
PARSE_ERROR_RULE = "RL000"


@dataclass
class ModuleContext:
    """Everything a rule needs to inspect one module."""

    path: str
    source: str
    tree: ast.Module
    #: The ``repro`` subpackage this module lives in (``"sim"``, ``"dca"``,
    #: ...) or ``""`` when it cannot be determined from the path.
    package: str = ""
    lines: List[str] = field(default_factory=list)

    @classmethod
    def parse(cls, source: str, path: str) -> "ModuleContext":
        tree = ast.parse(source, filename=path)
        return cls(
            path=path,
            source=source,
            tree=tree,
            package=_repro_package(path),
            lines=source.splitlines(),
        )


def _repro_package(path: str) -> str:
    """Top-level ``repro`` subpackage of ``path``, or ``""`` if unknown."""
    parts = Path(path).parts
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            rest = parts[i + 1 :]
            if len(rest) > 1:
                return rest[0]
            return ""
    return ""


class Rule(abc.ABC):
    """Base class for all reprolint rules."""

    #: Stable identifier, ``RLxxx``.
    rule_id: str = "RL999"
    #: One-line summary shown by ``--list-rules``.
    summary: str = ""
    severity: Severity = Severity.ERROR
    #: ``repro`` subpackages the rule applies to, or ``None`` for all.
    packages: Optional[FrozenSet[str]] = None

    def applies_to(self, module: ModuleContext) -> bool:
        if self.packages is None:
            return True
        return module.package in self.packages

    @abc.abstractmethod
    def check(self, module: ModuleContext) -> Iterator[Finding]:
        """Yield findings for ``module``."""

    def finding(self, module: ModuleContext, node: ast.AST, message: str) -> Finding:
        """Build a finding anchored at ``node``."""
        return Finding(
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=self.rule_id,
            severity=self.severity,
            message=message,
        )


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def registered_rules() -> Dict[str, Type[Rule]]:
    """The registry, keyed by rule id (importing ensures rules are loaded)."""
    import repro.lint.rules  # noqa: F401  (registration side effect)

    return dict(_REGISTRY)


def suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number -> rule ids silenced on that line.

    Line 0 holds whole-file suppressions (``disable-file=``).
    """
    out: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_FILE_RE.search(line)
        if match:
            out.setdefault(0, set()).update(_RULE_ID_RE.findall(match.group(1)))
            continue
        match = _SUPPRESS_NEXT_RE.search(line)
        if match:
            out.setdefault(lineno + 1, set()).update(_RULE_ID_RE.findall(match.group(1)))
            continue
        match = _SUPPRESS_RE.search(line)
        if match:
            out.setdefault(lineno, set()).update(_RULE_ID_RE.findall(match.group(1)))
    return out


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    """Expand files and directories into a sorted stream of ``*.py`` files."""
    seen: Set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


class LintEngine:
    """Runs a set of rules over sources, honouring suppression comments."""

    def __init__(self, rules: Optional[Sequence[Rule]] = None) -> None:
        if rules is None:
            rules = [cls() for _, cls in sorted(registered_rules().items())]
        self.rules: List[Rule] = list(rules)
        self.files_checked = 0
        self.suppressed_count = 0

    def lint_source(self, source: str, path: str = "<string>") -> List[Finding]:
        """Lint one in-memory module; parse failures become RL000 findings."""
        self.files_checked += 1
        try:
            module = ModuleContext.parse(source, path)
        except SyntaxError as exc:
            return [
                Finding(
                    path=path,
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) + 1,
                    rule_id=PARSE_ERROR_RULE,
                    severity=Severity.ERROR,
                    message=f"could not parse file: {exc.msg}",
                )
            ]
        silenced = suppressions(source)
        file_wide = silenced.get(0, set())
        findings: List[Finding] = []
        for rule in self.rules:
            if not rule.applies_to(module):
                continue
            for finding in rule.check(module):
                if finding.rule_id in file_wide or finding.rule_id in silenced.get(
                    finding.line, set()
                ):
                    self.suppressed_count += 1
                    continue
                findings.append(finding)
        return sorted(findings)

    def lint_file(self, path: Path) -> List[Finding]:
        return self.lint_source(path.read_text(encoding="utf-8"), str(path))

    def lint_paths(self, paths: Sequence[str]) -> List[Finding]:
        findings: List[Finding] = []
        for path in iter_python_files(paths):
            findings.extend(self.lint_file(path))
        return findings
