"""Flow rules (RL201-RL205), run by ``repro-lint --flows``.

These consume the events collected by the abstract interpreter in
:mod:`repro.lint.absint` -- stream draws, stream-tagged call arguments,
hand-off records, unordered reductions -- plus the same call graph the
RL10x rules use, and encode the *flow* invariants the replication
statistics depend on:

* every replicate draws from its **own** spawned stream (RL201, RL202);
* nothing unreplayable reaches decision code (RL203);
* floating-point reductions see a deterministic operand order (RL204);
* worker-side state leaves the worker only through the envelope
  reduction (RL205).

Like everything else in the project layer the rules are deliberately
under-approximate: they fire only on definite evidence (a resolved
callee, a ⊤u tag, a definitely-unordered operand), so a finding is
worth reading and a clean run does not mean "proved safe" -- it means
"nothing statically visible is wrong".
"""

from __future__ import annotations

import abc
import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple, Type

from repro.lint.absint import FlowAnalysis
from repro.lint.dataflow import MUTATOR_METHODS, is_mutable_literal
from repro.lint.findings import Finding, Severity
from repro.lint.graph import ProjectModule
from repro.lint.project_rules import (
    ProjectContext,
    _iter_pool_call_sites,
    _worker_roots,
)

#: Packages whose code makes simulation/strategy decisions; ⊤u
#: provenance must not reach them (RL203).
DECISION_PACKAGES = frozenset({"core", "sim", "dca"})

#: Synthetic label prefixes that do not name a concrete stream object
#: created at a known site (parameters get per-function placeholders).
_SYNTHETIC_PREFIXES = ("param:",)


class FlowRule(abc.ABC):
    """Base class for flow rules: whole-program, fed by the analysis."""

    rule_id: str = "RL299"
    summary: str = ""
    severity: Severity = Severity.ERROR

    @abc.abstractmethod
    def check(
        self, project: ProjectContext, analysis: FlowAnalysis
    ) -> Iterator[Finding]:
        """Yield findings over the whole project."""

    def finding(
        self, module: ProjectModule, node: Optional[ast.AST], message: str
    ) -> Finding:
        return Finding(
            path=module.path,
            line=getattr(node, "lineno", 1) if node is not None else 1,
            col=(getattr(node, "col_offset", 0) + 1) if node is not None else 1,
            rule_id=self.rule_id,
            severity=self.severity,
            message=message,
        )


_FLOW_REGISTRY: Dict[str, Type[FlowRule]] = {}


def register_flow(cls: Type[FlowRule]) -> Type[FlowRule]:
    """Class decorator adding a flow rule to the registry."""
    if cls.rule_id in _FLOW_REGISTRY:
        raise ValueError(f"duplicate flow rule id {cls.rule_id}")
    _FLOW_REGISTRY[cls.rule_id] = cls
    return cls


def registered_flow_rules() -> Dict[str, Type[FlowRule]]:
    """The flow-rule registry, keyed by rule id."""
    return dict(_FLOW_REGISTRY)


def _is_synthetic(label: str) -> bool:
    return label.startswith(_SYNTHETIC_PREFIXES)


def _display_label(label: str) -> str:
    """Human-readable form of an analysis label for messages."""
    if label.startswith("param:"):
        _, qualname, param = label.split(":", 2) if label.count(":") >= 2 else (
            "param",
            "?",
            label,
        )
        return f"the '{param}' parameter stream"
    return f"stream '{label}'"


@register_flow
class CrossReplicateStreamRule(FlowRule):
    """RL201: one RNG stream must never be visible to two replicate /
    shard contexts.  Replicates are i.i.d. only while each draws from
    its own ``spawn(...)``-derived stream; a shared stream correlates
    them (and, across processes, silently desynchronizes jobs=1 from
    jobs=N).  Two shapes are caught:

    * a stream-tagged value passed straight into a pool fan-out call --
      every worker receives (a pickled copy of) the same stream;
    * a draw, inside worker-reachable code, from a stream created
      *outside* the worker-reachable region (module level or a
      driver-side function): each worker process re-creates the same
      stream and every replicate replays identical draws.
    """

    rule_id = "RL201"
    summary = "no RNG stream shared across replicate/shard contexts"

    def check(
        self, project: ProjectContext, analysis: FlowAnalysis
    ) -> Iterator[Finding]:
        pool_sites = {
            id(ref.call): ref for ref in _iter_pool_call_sites(project)
        }
        seen: Set[Tuple[str, int]] = set()
        for record in analysis.events.call_stream_args:
            ref = pool_sites.get(id(record.node))
            if ref is None:
                continue
            key = (record.module, getattr(record.node, "lineno", 0))
            if key in seen:
                continue
            seen.add(key)
            label = (
                _display_label(record.value.label)
                if record.value.label is not None
                else "an RNG stream"
            )
            yield self.finding(
                project.modules[record.module],
                record.node,
                f"{label} is passed into a process-pool fan-out; every "
                "replicate would share (a copy of) the same stream and "
                "draws stop being i.i.d. -- derive one stream per "
                "replicate with registry.spawn(...) inside the worker",
            )

        roots = _worker_roots(project)
        if not roots:
            return
        reachable = project.callgraph.reachable(roots)
        flagged: Set[Tuple[str, Optional[str]]] = set()
        for draw in analysis.events.draws:
            label = draw.value.label
            if label is None or _is_synthetic(label):
                continue
            if draw.function is None or draw.function not in reachable:
                continue
            sites = analysis.events.created_at.get(label)
            if not sites:
                continue
            if any(
                site.function is not None and site.function in reachable
                for site in sites
            ):
                continue  # (also) created inside the worker region: per-worker
            key = (label, draw.function)
            if key in flagged:
                continue
            flagged.add(key)
            outside = sites[0]
            where = (
                f"{outside.module}:{outside.lineno}"
                if outside.function is None
                else f"{outside.function.split(':', 1)[1]}() "
                f"({outside.module}:{outside.lineno})"
            )
            yield self.finding(
                project.modules[draw.module],
                draw.node,
                f"worker-reachable {draw.function.split(':', 1)[1]}() draws "
                f"from {_display_label(label)} created outside the worker "
                f"region (at {where}); every worker process re-creates the "
                "same stream, so replicates replay identical draws -- "
                "spawn a per-replicate stream instead",
            )


@register_flow
class StreamReuseAfterHandoffRule(FlowRule):
    """RL202: once a stream is handed to a consuming callee (one that
    draws from it, stores it, or passes it on), the parent scope must
    not keep drawing from it.  Parent and child would interleave draws
    on one generator, so any change to either side's draw count shifts
    the other's sequence -- the classic action-at-a-distance
    reproducibility bug."""

    rule_id = "RL202"
    summary = "no draws from a stream after it was handed off to a consuming callee"

    def check(
        self, project: ProjectContext, analysis: FlowAnalysis
    ) -> Iterator[Finding]:
        seen: Set[Tuple[str, Optional[str], str]] = set()
        for record in analysis.events.reuses:
            key = (record.module, record.function, record.label)
            if key in seen:
                continue
            seen.add(key)
            callee = (
                record.callee.split(":", 1)[1]
                if record.callee is not None
                else "a callee"
            )
            where = (
                record.function.split(":", 1)[1] + "()"
                if record.function is not None
                else "module-level code"
            )
            yield self.finding(
                project.modules[record.module],
                record.node,
                f"{where} draws from {_display_label(record.label)} after "
                f"handing it off to {callee}() on line "
                f"{record.handoff_lineno}; parent and child now interleave "
                "draws on one generator -- spawn a child stream for the "
                "hand-off instead",
            )


@register_flow
class UnseededEscapeRule(FlowRule):
    """RL203: ⊤u provenance -- an unseeded ``random.Random()``, seeded
    from OS entropy -- must not reach decision code in ``core``, ``sim``
    or ``dca``.  Any draw it feeds is unreplayable, which voids the
    paper's same-seed trace guarantee for the whole run."""

    rule_id = "RL203"
    summary = "no unseeded (⊤u) RNG may flow into core/sim/dca decision code"

    def check(
        self, project: ProjectContext, analysis: FlowAnalysis
    ) -> Iterator[Finding]:
        seen: Set[Tuple[str, int]] = set()
        for record in analysis.events.call_stream_args:
            if not record.value.unseeded or record.callee is None:
                continue
            callee_module = record.callee.split(":", 1)[0]
            target = project.modules.get(callee_module)
            if target is None or target.package not in DECISION_PACKAGES:
                continue
            key = (record.module, getattr(record.node, "lineno", 0))
            if key in seen:
                continue
            seen.add(key)
            yield self.finding(
                project.modules[record.module],
                record.node,
                "an unseeded random.Random() (⊤ provenance, OS-entropy "
                f"seeded) flows into {record.callee.split(':', 1)[1]}() in "
                f"the '{target.package}' layer; its draws cannot be "
                "replayed -- pass a registry stream or an explicit seed",
            )
        for draw in analysis.events.draws:
            if not draw.value.unseeded:
                continue
            module = project.modules[draw.module]
            if module.package not in DECISION_PACKAGES:
                continue
            key = (draw.module, getattr(draw.node, "lineno", 0))
            if key in seen:
                continue
            seen.add(key)
            where = (
                draw.function.split(":", 1)[1] + "()"
                if draw.function is not None
                else "module-level code"
            )
            yield self.finding(
                module,
                draw.node,
                f"{where} in the '{module.package}' layer draws "
                f"({draw.method}) from an unseeded random.Random(); the "
                "draw cannot be replayed -- derive the stream from the "
                "registry or take an explicit seed",
            )


@register_flow
class UnorderedAccumulationRule(FlowRule):
    """RL204: float accumulation is not associative, so a reduction fed
    by a definitely-unordered value (set iteration, ``as_completed``
    results, anything the domain joined to UNORDERED) changes value with
    hash seed and completion order.  Syntactically-visible set operands
    are RL104's to report; this rule catches the ones only the flow
    analysis can see -- unorderedness arriving through assignments,
    calls, or containers."""

    rule_id = "RL204"
    summary = "no order-sensitive float reduction over unordered iteration"

    def check(
        self, project: ProjectContext, analysis: FlowAnalysis
    ) -> Iterator[Finding]:
        seen: Set[Tuple[str, int, int]] = set()
        for record in analysis.events.unordered_reduces:
            if record.syntactic:
                continue  # RL104 already owns the syntactic case
            key = (
                record.module,
                getattr(record.node, "lineno", 0),
                getattr(record.node, "col_offset", 0),
            )
            if key in seen:
                continue
            seen.add(key)
            module = project.modules[record.module]
            if record.reducer == "for-loop":
                yield self.finding(
                    module,
                    record.node,
                    f"loop accumulates into '{record.accumulator}' while "
                    "iterating a value the flow analysis proves unordered "
                    "(set-derived or completion-ordered); float "
                    "accumulation is order-sensitive -- sort the iterable "
                    "or reduce positionally",
                )
            else:
                yield self.finding(
                    module,
                    record.node,
                    f"{record.reducer}() consumes a value the flow analysis "
                    "proves unordered (set-derived or completion-ordered); "
                    "the reduction depends on hash/completion order -- "
                    "sort first, or reduce parallel_map results in "
                    "submission order",
                )


@register_flow
class WorkerEstimatorStateRule(FlowRule):
    """RL205: mutable *class-level* state written from worker-reachable
    code never leaves the worker process -- each worker mutates its own
    copy and the mutation is dropped on exit, so jobs=1 and jobs=N
    silently diverge.  This is the class-attribute sibling of RL103
    (module globals): learning/stateful strategies must return their
    per-replicate observations through the envelope reduction
    (``ReplicateEnvelope`` + ``aggregate_metrics``), not accumulate them
    in shared estimator state."""

    rule_id = "RL205"
    summary = "worker-reachable code must not mutate class-level mutable state"

    def check(
        self, project: ProjectContext, analysis: FlowAnalysis
    ) -> Iterator[Finding]:
        roots = _worker_roots(project)
        if not roots:
            return
        reachable = project.callgraph.reachable(roots)
        for name, module in sorted(project.modules.items()):
            for classdef in module.context.tree.body:
                if not isinstance(classdef, ast.ClassDef):
                    continue
                shared = self._class_mutable_attrs(classdef)
                if not shared:
                    continue
                for method in classdef.body:
                    if not isinstance(
                        method, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        continue
                    qualname = f"{name}:{classdef.name}.{method.name}"
                    if qualname not in reachable:
                        continue
                    for attr, node in self._self_attr_mutations(method, shared):
                        yield self.finding(
                            module,
                            node,
                            f"{classdef.name}.{method.name}() mutates "
                            f"class-level '{attr}' but is reachable from a "
                            "process-pool worker; per-process mutations are "
                            "dropped on worker exit and jobs=1/jobs=N "
                            "diverge -- return per-replicate metrics via "
                            "the ReplicateEnvelope reduction instead",
                        )

    @staticmethod
    def _class_mutable_attrs(classdef: ast.ClassDef) -> FrozenSet[str]:
        """Class-body names bound to mutable literals and never rebound
        as instance attributes in ``__init__`` (which would shadow the
        class attribute with per-instance state)."""
        attrs: Set[str] = set()
        for stmt in classdef.body:
            if isinstance(stmt, ast.Assign) and is_mutable_literal(stmt.value):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        attrs.add(target.id)
            elif (
                isinstance(stmt, ast.AnnAssign)
                and stmt.value is not None
                and is_mutable_literal(stmt.value)
                and isinstance(stmt.target, ast.Name)
            ):
                attrs.add(stmt.target.id)
        if not attrs:
            return frozenset()
        for stmt in classdef.body:
            if (
                isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                and stmt.name == "__init__"
            ):
                for node in ast.walk(stmt):
                    if isinstance(node, ast.Assign):
                        for target in node.targets:
                            if (
                                isinstance(target, ast.Attribute)
                                and isinstance(target.value, ast.Name)
                                and target.value.id == "self"
                            ):
                                attrs.discard(target.attr)
        return frozenset(attrs)

    @staticmethod
    def _self_attr_mutations(
        method: ast.AST, shared: FrozenSet[str]
    ) -> Iterator[Tuple[str, ast.AST]]:
        """``self.X`` mutations of shared class attrs inside ``method``:
        mutator calls, subscript stores, and augmented assignments."""

        def self_attr(expr: ast.AST) -> Optional[str]:
            if (
                isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id in ("self", "cls")
                and expr.attr in shared
            ):
                return expr.attr
            return None

        for node in ast.walk(method):
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr in MUTATOR_METHODS:
                    attr = self_attr(node.func.value)
                    if attr is not None:
                        yield attr, node
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Subscript):
                        attr = self_attr(target.value)
                        if attr is not None:
                            yield attr, node
            elif isinstance(node, ast.AugAssign):
                target = node.target
                if isinstance(target, ast.Subscript):
                    attr = self_attr(target.value)
                    if attr is not None:
                        yield attr, node
                else:
                    attr = self_attr(target)
                    if attr is not None:
                        yield attr, node
