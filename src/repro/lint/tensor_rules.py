"""Tensor rules (RL301-RL305), run by ``repro-lint --tensors``.

These consume the events collected by the array abstract interpreter in
:mod:`repro.lint.tensor_absint` -- provably incompatible broadcasts,
silent dtype drifts, mutation through aliases of fingerprinted storage,
unstable sorts -- plus a syntactic/call-graph pass for regime-guard
completeness, and encode the invariants the columnar tier's
byte-identity guarantee depends on:

* shapes that meet in an elementwise op must be compatible (RL301);
* a column keeps its declared dtype -- no silent truncation, widening
  or cross-dtype equality (RL302);
* storage that reached a fingerprint/envelope/telemetry snapshot is
  never mutated through another alias afterwards (RL303);
* decision paths see only deterministic array orders: stable sorts,
  no ``np.unique`` index assumptions, no float reductions over
  unordered operands (RL304);
* columnar deciders *reject* configs outside the supported regime --
  every ``*Unsupported`` guard is live and every public entry point
  reaches one (RL305).

Like the RL1xx/RL2xx tiers the rules are deliberately
under-approximate: they fire only on definite evidence (two *known*
incompatible dims, a *known* int column taking a *known* float), so a
finding is worth reading and a clean run means "nothing statically
visible is wrong", not "proved safe".
"""

from __future__ import annotations

import abc
import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Type

from repro.lint.findings import Finding, Severity
from repro.lint.graph import ProjectModule
from repro.lint.project_rules import ProjectContext
from repro.lint.tensor_absint import TensorAnalysis

#: Packages whose array code feeds decisions or reports; nondeterminism
#: there breaks the jobs=N == jobs=1 byte-identity guarantee (RL304).
TENSOR_DECISION_PACKAGES = frozenset({"core", "sim", "dca", "parallel", "bench"})

#: Class-name suffix marking a regime-rejection exception (RL305).
_GUARD_SUFFIX = "Unsupported"


class TensorRule(abc.ABC):
    """Base class for tensor rules: whole-program, fed by the analysis."""

    rule_id: str = "RL399"
    summary: str = ""
    severity: Severity = Severity.ERROR

    @abc.abstractmethod
    def check(
        self, project: ProjectContext, analysis: TensorAnalysis
    ) -> Iterator[Finding]:
        """Yield findings over the whole project."""

    def finding(
        self, module: ProjectModule, node: Optional[ast.AST], message: str
    ) -> Finding:
        return Finding(
            path=module.path,
            line=getattr(node, "lineno", 1) if node is not None else 1,
            col=(getattr(node, "col_offset", 0) + 1) if node is not None else 1,
            rule_id=self.rule_id,
            severity=self.severity,
            message=message,
        )


_TENSOR_REGISTRY: Dict[str, Type[TensorRule]] = {}


def register_tensor(cls: Type[TensorRule]) -> Type[TensorRule]:
    """Class decorator adding a tensor rule to the registry."""
    if cls.rule_id in _TENSOR_REGISTRY:
        raise ValueError(f"duplicate tensor rule id {cls.rule_id}")
    _TENSOR_REGISTRY[cls.rule_id] = cls
    return cls


def registered_tensor_rules() -> Dict[str, Type[TensorRule]]:
    """The tensor-rule registry, keyed by rule id."""
    return dict(_TENSOR_REGISTRY)


def _where(function: Optional[str]) -> str:
    if function is None:
        return "module-level code"
    return function.split(":", 1)[1] + "()"


def _site_key(record) -> Tuple[str, int, int]:
    return (
        record.module,
        getattr(record.node, "lineno", 0),
        getattr(record.node, "col_offset", 0),
    )


@register_tensor
class BroadcastMismatchRule(TensorRule):
    """RL301: two arrays whose trailing dims are *provably* incompatible
    (distinct symbolic names like ``tasks`` vs ``nodes``, or unequal
    literals, neither being 1) met in an elementwise op, or a boolean
    mask whose length provably differs from the masked axis.  numpy
    would raise at runtime -- but only in the regime that exercises the
    branch, which for gated columnar code may be long after merge."""

    rule_id = "RL301"
    summary = "no provably incompatible shapes in broadcasting ops or masks"

    def check(
        self, project: ProjectContext, analysis: TensorAnalysis
    ) -> Iterator[Finding]:
        seen: Set[Tuple[str, int, int]] = set()
        for record in analysis.events.broadcasts:
            key = _site_key(record)
            if key in seen:
                continue
            seen.add(key)
            yield self.finding(
                project.modules[record.module],
                record.node,
                f"{_where(record.function)} broadcasts dim '{record.left}' "
                f"against dim '{record.right}' with '{record.op}'; the axes "
                "are provably incompatible, so this raises at runtime in "
                "the regime that reaches it -- align the arrays to one "
                "axis before the op",
            )
        for record in analysis.events.masks:
            key = _site_key(record)
            if key in seen:
                continue
            seen.add(key)
            yield self.finding(
                project.modules[record.module],
                record.node,
                f"{_where(record.function)} applies a boolean mask of "
                f"length '{record.mask_dim}' to an axis of length "
                f"'{record.axis_dim}'; mask and axis provably differ -- "
                "build the mask over the same axis it filters",
            )


@register_tensor
class DtypeDriftRule(TensorRule):
    """RL302: a column's dtype silently changed out from under its
    semantics.  ``int`` tallies rebound to float results (a ``/`` or
    float arithmetic replaced exact counts), float values stored into
    int columns (silent truncation), a narrowing ``astype`` (precision
    loss), or ``==`` between int and float arrays (exactness illusion).
    ``astype(bool)`` of int data is exempt -- that is idiomatic
    masking, not drift."""

    rule_id = "RL302"
    summary = "no silent dtype drift on array columns"

    _MESSAGES = {
        "store-float-into-int": (
            "stores a float value into int column '{name}'; numpy "
            "truncates silently and the tally stops being exact -- "
            "round explicitly or declare the column float64"
        ),
        "narrowing-astype": (
            "narrows '{name}' from {src} to {dst} with astype(); "
            "precision is lost silently -- widen instead, or cast "
            "through an explicit rounding step"
        ),
        "int-rebound-to-float": (
            "rebinds int column '{name}' to a float result; exact "
            "integer tallies became inexact floats mid-function -- "
            "use a new name for the derived float column"
        ),
        "cross-dtype-compare": (
            "compares int and float arrays with '=='; float "
            "representation makes the equality inexact -- compare in "
            "one dtype, or use np.isclose for floats"
        ),
    }

    def check(
        self, project: ProjectContext, analysis: TensorAnalysis
    ) -> Iterator[Finding]:
        seen: Set[Tuple[str, int, int]] = set()
        for record in analysis.events.drifts:
            if (
                record.kind == "narrowing-astype"
                and record.src.is_int
                and record.dst.is_bool
            ):
                continue  # int -> bool is idiomatic masking
            key = _site_key(record)
            if key in seen:
                continue
            seen.add(key)
            template = self._MESSAGES[record.kind]
            detail = template.format(
                name=record.name or "<array>",
                src=record.src.name.lower(),
                dst=record.dst.name.lower(),
            )
            yield self.finding(
                project.modules[record.module],
                record.node,
                f"{_where(record.function)} {detail}",
            )


@register_tensor
class AliasMutationRule(TensorRule):
    """RL303: storage that already reached a fingerprint, envelope or
    telemetry snapshot is mutated in place through a *different* alias
    (a view or a second name for the same buffer).  The sink holds the
    buffer by reference, so the snapshot silently changes after the
    fact and the recorded trace no longer matches what ran -- copy
    before sinking, or mutate before the snapshot."""

    rule_id = "RL303"
    summary = "no in-place mutation through an alias of fingerprinted storage"

    def check(
        self, project: ProjectContext, analysis: TensorAnalysis
    ) -> Iterator[Finding]:
        seen: Set[Tuple[str, int, int]] = set()
        for record in analysis.events.alias_mutations:
            key = _site_key(record)
            if key in seen:
                continue
            seen.add(key)
            yield self.finding(
                project.modules[record.module],
                record.node,
                f"{_where(record.function)} mutates '{record.alias}' in "
                f"place, but the same storage reached {record.sink}() as "
                f"'{record.sunk_as}' on line {record.sink_lineno}; the "
                "snapshot aliases the buffer and silently changes -- "
                "sink a .copy(), or finish mutating first",
            )


@register_tensor
class UnstableArrayOrderRule(TensorRule):
    """RL304: a nondeterministic array order feeding decision/report
    code in core/sim/dca/parallel/bench.  ``sort``/``argsort`` without
    ``kind="stable"`` break ties by an implementation-defined
    introsort order; ``np.unique(..., return_index/inverse)`` over an
    unordered operand pins indices to an unstable input order; float
    ufunc reductions over set-derived operands change value with hash
    seed.  Any of these silently breaks the jobs=N == jobs=1
    byte-identity guarantee."""

    rule_id = "RL304"
    summary = "no nondeterministic array ordering in decision paths"

    def check(
        self, project: ProjectContext, analysis: TensorAnalysis
    ) -> Iterator[Finding]:
        seen: Set[Tuple[str, int, int]] = set()
        for record in analysis.events.unstable_sorts:
            module = project.modules[record.module]
            if module.package not in TENSOR_DECISION_PACKAGES:
                continue
            key = _site_key(record)
            if key in seen:
                continue
            seen.add(key)
            yield self.finding(
                module,
                record.node,
                f"{_where(record.function)} calls {record.func} without "
                "kind=\"stable\"; ties break in an implementation-defined "
                "order and equal-key rows reorder between runs -- pass "
                "kind=\"stable\"",
            )
        for record in analysis.events.unique_orders:
            module = project.modules[record.module]
            if module.package not in TENSOR_DECISION_PACKAGES:
                continue
            key = _site_key(record)
            if key in seen:
                continue
            seen.add(key)
            yield self.finding(
                module,
                record.node,
                f"{_where(record.function)} calls np.unique with "
                "return_index/return_inverse on an unordered operand; the "
                "returned indices depend on the unstable input order -- "
                "sort the input first",
            )
        for record in analysis.events.unordered_reduces:
            module = project.modules[record.module]
            if module.package not in TENSOR_DECISION_PACKAGES:
                continue
            key = _site_key(record)
            if key in seen:
                continue
            seen.add(key)
            yield self.finding(
                module,
                record.node,
                f"{_where(record.function)} reduces ({record.reducer}) a "
                "float operand the analysis proves unordered (set-derived "
                "or completion-ordered); float accumulation is "
                "order-sensitive -- sort or materialize a deterministic "
                "order first",
            )


@register_tensor
class RegimeGuardRule(TensorRule):
    """RL305: regime-guard completeness for gated engines.  A module
    that defines a ``*Unsupported`` rejection exception promises to
    *reject*, not guess, outside its supported regime.  Two ways to
    break the promise:

    * a guard ``raise`` that is statically dead -- behind ``if False``
      or after an unconditional return/raise, so the unsupported config
      sails through;
    * a public entry point taking a ``config`` that never reaches any
      guard raiser through the call graph, so nothing vets the config
      at all.
    """

    rule_id = "RL305"
    summary = "every *Unsupported regime guard is live and reached by entry points"

    def check(
        self, project: ProjectContext, analysis: TensorAnalysis
    ) -> Iterator[Finding]:
        for name in sorted(project.modules):
            module = project.modules[name]
            guards = self._guard_classes(module)
            if not guards:
                continue
            raisers: Set[str] = set()
            for qualname, node in self._module_functions(name, module):
                live, dead = self._guard_raises(node, guards)
                if live:
                    raisers.add(qualname)
                for raise_node in dead:
                    yield self.finding(
                        module,
                        raise_node,
                        f"{qualname.split(':', 1)[1]}() contains a "
                        f"statically dead regime guard (raise "
                        f"{self._raised_name(raise_node, guards)}); the "
                        "unsupported config sails through -- move the "
                        "guard onto a live path",
                    )
            for qualname, node in self._module_functions(name, module):
                if not self._is_entry_point(qualname, node):
                    continue
                reachable = project.callgraph.reachable([qualname])
                if reachable & raisers:
                    continue
                yield self.finding(
                    module,
                    node,
                    f"public entry point {node.name}() takes a config but "
                    "never reaches a "
                    f"{'/'.join(sorted(guards))} guard; deciders must "
                    "reject unsupported regimes, not guess -- validate "
                    "the config before running",
                )

    @staticmethod
    def _guard_classes(module: ProjectModule) -> Set[str]:
        return {
            stmt.name
            for stmt in module.context.tree.body
            if isinstance(stmt, ast.ClassDef) and stmt.name.endswith(_GUARD_SUFFIX)
        }

    @staticmethod
    def _module_functions(
        name: str, module: ProjectModule
    ) -> Iterator[Tuple[str, ast.FunctionDef]]:
        for stmt in module.context.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield f"{name}:{stmt.name}", stmt
            elif isinstance(stmt, ast.ClassDef):
                for inner in stmt.body:
                    if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        yield f"{name}:{stmt.name}.{inner.name}", inner

    @classmethod
    def _guard_raises(
        cls, function: ast.AST, guards: Set[str]
    ) -> Tuple[List[ast.Raise], List[ast.Raise]]:
        """(live, dead) guard raises inside ``function``."""
        live: List[ast.Raise] = []
        dead: List[ast.Raise] = []

        def visit(statements: Sequence[ast.stmt], dead_context: bool) -> None:
            terminated = False
            for stmt in statements:
                stmt_dead = dead_context or terminated
                if isinstance(stmt, ast.Raise):
                    if cls._raised_name(stmt, guards) is not None:
                        (dead if stmt_dead else live).append(stmt)
                    terminated = True
                    continue
                if isinstance(stmt, (ast.Return, ast.Break, ast.Continue)):
                    terminated = True
                    continue
                if isinstance(stmt, ast.If):
                    test_false = (
                        isinstance(stmt.test, ast.Constant) and not stmt.test.value
                    )
                    visit(stmt.body, stmt_dead or test_false)
                    visit(stmt.orelse, stmt_dead)
                elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                    visit(stmt.body, stmt_dead)
                    visit(stmt.orelse, stmt_dead)
                elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                    visit(stmt.body, stmt_dead)
                elif isinstance(stmt, ast.Try):
                    visit(stmt.body, stmt_dead)
                    for handler in stmt.handlers:
                        visit(handler.body, stmt_dead)
                    visit(stmt.orelse, stmt_dead)
                    visit(stmt.finalbody, stmt_dead)

        visit(getattr(function, "body", []), False)
        return live, dead

    @staticmethod
    def _raised_name(node: ast.Raise, guards: Set[str]) -> Optional[str]:
        exc = node.exc
        if isinstance(exc, ast.Call):
            exc = exc.func
        if isinstance(exc, ast.Name) and exc.id in guards:
            return exc.id
        if isinstance(exc, ast.Attribute) and exc.attr in guards:
            return exc.attr
        return None

    @staticmethod
    def _is_entry_point(qualname: str, node: ast.AST) -> bool:
        """Public top-level function taking a ``config`` parameter."""
        local = qualname.split(":", 1)[1]
        if "." in local or local.startswith("_"):
            return False
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return False
        params = [arg.arg for arg in node.args.args + node.args.kwonlyargs]
        return "config" in params
