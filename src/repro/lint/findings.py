"""Finding and severity types shared by the rule engine and CLI."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings fail the lint run (non-zero exit); ``WARNING``
    findings are reported but do not affect the exit code.
    """

    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a specific source location.

    Ordering is (path, line, col, rule_id) so sorted findings read like a
    compiler's output.
    """

    path: str
    line: int
    col: int
    rule_id: str
    severity: Severity
    message: str

    def format(self) -> str:
        """Render as ``path:line: RLxxx message`` (the text output)."""
        return f"{self.path}:{self.line}: {self.rule_id} {self.message}"

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (used by ``--format json``)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "severity": self.severity.value,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Finding":
        """Inverse of :meth:`as_dict` (used by the incremental cache)."""
        return cls(
            path=payload["path"],
            line=payload["line"],
            col=payload["col"],
            rule_id=payload["rule"],
            severity=Severity(payload["severity"]),
            message=payload["message"],
        )
