"""Command-line entry point: ``python -m repro.lint`` / ``repro-lint``.

Exit codes: 0 = clean, 1 = error-severity findings, 2 = usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.lint.config import LintConfig, load_config
from repro.lint.engine import LintEngine, registered_rules
from repro.lint.findings import Finding, Severity

JSON_SCHEMA_VERSION = 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Determinism & correctness static analysis for the repro codebase.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: [tool.reprolint] paths)",
    )
    parser.add_argument(
        "-f",
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (overrides config enable)",
    )
    parser.add_argument(
        "--disable",
        metavar="RULES",
        help="comma-separated rule ids to skip (adds to config disable)",
    )
    parser.add_argument(
        "--config",
        metavar="PYPROJECT",
        help="pyproject.toml to read [tool.reprolint] from (default: auto-discover)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    return parser


def _split_rules(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [token.strip() for token in raw.split(",") if token.strip()]


def _resolve_config(args: argparse.Namespace) -> LintConfig:
    pyproject = Path(args.config) if args.config else None
    if pyproject is not None and not pyproject.is_file():
        raise FileNotFoundError(f"config file not found: {pyproject}")
    config = load_config(pyproject)
    selected = _split_rules(args.select)
    if selected is not None:
        config.enable = selected
    disabled = _split_rules(args.disable)
    if disabled is not None:
        config.disable = list(config.disable) + disabled
    return config


def _render_text(findings: List[Finding], engine: LintEngine) -> str:
    lines = [finding.format() for finding in findings]
    errors = sum(1 for f in findings if f.severity is Severity.ERROR)
    warnings = len(findings) - errors
    lines.append(
        f"{engine.files_checked} file(s) checked: "
        f"{errors} error(s), {warnings} warning(s), "
        f"{engine.suppressed_count} suppressed"
    )
    return "\n".join(lines)


def _render_json(findings: List[Finding], engine: LintEngine) -> str:
    summary: Dict[str, int] = {}
    for finding in findings:
        summary[finding.rule_id] = summary.get(finding.rule_id, 0) + 1
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "files_checked": engine.files_checked,
        "suppressed": engine.suppressed_count,
        "findings": [finding.as_dict() for finding in findings],
        "summary": summary,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    registry = registered_rules()
    if args.list_rules:
        for rule_id, cls in sorted(registry.items()):
            print(f"{rule_id}  [{cls.severity.value}]  {cls.summary}")
        return 0

    if args.select is not None and not _split_rules(args.select):
        print("repro-lint: --select got no rule ids", file=sys.stderr)
        return 2

    try:
        config = _resolve_config(args)
    except FileNotFoundError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2

    unknown = [
        rule_id
        for rule_id in (config.enable or []) + list(config.disable)
        if rule_id not in registry
    ]
    if unknown:
        print(f"repro-lint: unknown rule id(s): {', '.join(sorted(set(unknown)))}", file=sys.stderr)
        return 2

    rule_ids = config.selected_rule_ids(sorted(registry))
    engine = LintEngine(rules=[registry[rule_id]() for rule_id in rule_ids])

    paths = list(args.paths) or list(config.paths)
    missing = [path for path in paths if not Path(path).exists()]
    if missing:
        print(f"repro-lint: path(s) not found: {', '.join(missing)}", file=sys.stderr)
        return 2

    findings = engine.lint_paths(paths)
    if args.format == "json":
        print(_render_json(findings, engine))
    else:
        print(_render_text(findings, engine))
    has_errors = any(f.severity is Severity.ERROR for f in findings)
    return 1 if has_errors else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
