"""Command-line entry point: ``python -m repro.lint`` / ``repro-lint``.

Three modes:

* **per-file** (default): run the RL0xx rules over the given paths;
* **project** (``--project``): additionally build the import graph and
  call graph over the ``repro`` package and run the whole-program RL1xx
  rules, with per-file linting fanned out over ``--jobs`` worker
  processes via :func:`repro.parallel.parallel_map`;
* **flows** (``--flows``, implies ``--project``): also run the
  flow-sensitive abstract interpretation and the RL2xx provenance/
  shard-safety rules;
* **tensors** (``--tensors``, implies ``--project``): also run the
  array abstract interpretation and the RL3xx shape/dtype/aliasing/
  determinism rules over the numpy (columnar) tier.

Project-mode runs keep an incremental cache (``.reprolint-cache.json``
next to pyproject.toml) so warm runs skip unchanged files; ``--no-cache``
opts out.  ``--fix`` rewrites the mechanical findings (RL004, RL006) in
place before linting.

Output formats (``--output`` / legacy ``-f/--format``): ``text``,
``json`` (schema-versioned payload), and ``sarif`` (SARIF 2.1.0, for CI
annotation upload).  A committed baseline file
(``.reprolint-baseline.json``) can absorb known findings so rules adopt
incrementally; see ``--baseline`` / ``--update-baseline``.

Exit codes: 0 = clean, 1 = error-severity findings, 2 = usage error,
3 = internal error (the linter itself crashed).  CI relies on the 1/3
split: findings are tolerated where a job only renders them, but a
crashed linter must never be mistaken for a clean-ish run.
"""

from __future__ import annotations

import argparse
import json
import sys
import traceback
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.baseline import (
    DEFAULT_BASELINE_NAME,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.cache import DEFAULT_CACHE_NAME, LintCache, ruleset_signature
from repro.lint.config import LintConfig, load_config
from repro.lint.engine import LintEngine, registered_rules
from repro.lint.findings import Finding, Severity
from repro.lint.flow_rules import registered_flow_rules
from repro.lint.project import ProjectReport, lint_project
from repro.lint.project_rules import registered_project_rules
from repro.lint.sarif import render_sarif
from repro.lint.tensor_rules import registered_tensor_rules

#: Exit codes (see module docstring); CI scripts match on these.
EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2
EXIT_INTERNAL = 3

#: Bump on any incompatible change to the ``--output json`` payload.
JSON_SCHEMA_VERSION = 2
#: The ``schema`` field of the JSON payload (BENCH_*.json convention).
JSON_SCHEMA = f"repro-lint-report/{JSON_SCHEMA_VERSION}"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Determinism & correctness static analysis for the repro codebase.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: [tool.reprolint] paths)",
    )
    parser.add_argument(
        "-f",
        "--format",
        "--output",
        dest="format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--project",
        action="store_true",
        help="whole-program mode: run the RL1xx cross-module rules too",
    )
    parser.add_argument(
        "--flows",
        action="store_true",
        help="flow analysis mode (implies --project): run the RL2xx "
        "RNG-provenance and shard-safety rules",
    )
    parser.add_argument(
        "--tensors",
        action="store_true",
        help="tensor analysis mode (implies --project): run the RL3xx "
        "array shape/dtype/aliasing/determinism rules",
    )
    parser.add_argument(
        "--fix",
        action="store_true",
        help="rewrite mechanical findings in place (RL004 mutable "
        "defaults, RL006 swallowed exceptions) before linting",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the incremental cache "
        f"({DEFAULT_CACHE_NAME}, project mode only)",
    )
    parser.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for per-file linting in --project mode "
        "(default: 1; output is byte-identical for any N)",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help="baseline file of known findings to tolerate "
        f"(default in --project mode: {DEFAULT_BASELINE_NAME} next to pyproject.toml)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline file from the current findings and exit 0",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (overrides config enable)",
    )
    parser.add_argument(
        "--disable",
        metavar="RULES",
        help="comma-separated rule ids to skip (adds to config disable)",
    )
    parser.add_argument(
        "--config",
        metavar="PYPROJECT",
        help="pyproject.toml to read [tool.reprolint] from (default: auto-discover)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    return parser


def _split_rules(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [token.strip() for token in raw.split(",") if token.strip()]


def _resolve_config(args: argparse.Namespace) -> LintConfig:
    pyproject = Path(args.config) if args.config else None
    if pyproject is not None and not pyproject.is_file():
        raise FileNotFoundError(f"config file not found: {pyproject}")
    config = load_config(pyproject)
    selected = _split_rules(args.select)
    if selected is not None:
        config.enable = selected
    disabled = _split_rules(args.disable)
    if disabled is not None:
        config.disable = list(config.disable) + disabled
    return config


def _tool_version() -> str:
    import repro

    return getattr(repro, "__version__", "0")


def _render_text(
    findings: List[Finding],
    files_checked: int,
    suppressed: int,
    *,
    baselined: int = 0,
    stale_baseline: int = 0,
) -> str:
    lines = [finding.format() for finding in findings]
    errors = sum(1 for f in findings if f.severity is Severity.ERROR)
    warnings = len(findings) - errors
    summary = (
        f"{files_checked} file(s) checked: "
        f"{errors} error(s), {warnings} warning(s), "
        f"{suppressed} suppressed"
    )
    if baselined or stale_baseline:
        summary += f", {baselined} baselined"
        if stale_baseline:
            summary += (
                f", {stale_baseline} stale baseline entr"
                f"{'y' if stale_baseline == 1 else 'ies'} (run --update-baseline)"
            )
    lines.append(summary)
    return "\n".join(lines)


def _render_json(
    findings: List[Finding],
    files_checked: int,
    suppressed: int,
    *,
    baselined: int = 0,
    stale_baseline: int = 0,
) -> str:
    summary: Dict[str, int] = {}
    for finding in findings:
        summary[finding.rule_id] = summary.get(finding.rule_id, 0) + 1
    payload = {
        "schema": JSON_SCHEMA,
        "version": JSON_SCHEMA_VERSION,
        "files_checked": files_checked,
        "suppressed": suppressed,
        "baselined": baselined,
        "stale_baseline": stale_baseline,
        "findings": [finding.as_dict() for finding in findings],
        "summary": summary,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _rule_metadata(rule_ids: Sequence[str]) -> List[Tuple[str, str, Severity]]:
    registry: Dict[str, type] = {}
    registry.update(registered_rules())
    registry.update(registered_project_rules())
    registry.update(registered_flow_rules())
    registry.update(registered_tensor_rules())
    return [
        (rule_id, registry[rule_id].summary, registry[rule_id].severity)
        for rule_id in sorted(rule_ids)
        if rule_id in registry
    ]


def _cache_path(config: LintConfig) -> Path:
    """The incremental cache lives next to the resolved pyproject.toml
    (so one cache serves the repo), or in the cwd without one."""
    if config.source != "<defaults>":
        return Path(config.source).parent / DEFAULT_CACHE_NAME
    return Path(DEFAULT_CACHE_NAME)


def _default_baseline(args: argparse.Namespace, config: LintConfig) -> Optional[Path]:
    """The baseline path: explicit flag, else (project mode only) the
    conventional file next to the resolved pyproject.toml."""
    if args.baseline:
        return Path(args.baseline)
    if not args.project and not args.update_baseline:
        return None
    if config.source != "<defaults>":
        candidate = Path(config.source).parent / DEFAULT_BASELINE_NAME
    else:
        candidate = Path(DEFAULT_BASELINE_NAME)
    if candidate.is_file() or args.update_baseline:
        return candidate
    return None


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _run(args)
    except Exception:
        traceback.print_exc()
        print(
            "repro-lint: internal error -- this is a linter bug, not a finding",
            file=sys.stderr,
        )
        return EXIT_INTERNAL


def _run(args: argparse.Namespace) -> int:
    file_registry = registered_rules()
    project_registry = registered_project_rules()
    flow_registry = registered_flow_rules()
    tensor_registry = registered_tensor_rules()
    if args.list_rules:
        combined = {
            **file_registry,
            **project_registry,
            **flow_registry,
            **tensor_registry,
        }
        for rule_id, cls in sorted(combined.items()):
            if rule_id in tensor_registry:
                scope = "tensor"
            elif rule_id in flow_registry:
                scope = "flow"
            elif rule_id in project_registry:
                scope = "project"
            else:
                scope = "file"
            print(f"{rule_id}  [{cls.severity.value}]  [{scope}]  {cls.summary}")
        return EXIT_CLEAN

    if args.flows or args.tensors:
        args.project = True

    if args.select is not None and not _split_rules(args.select):
        print("repro-lint: --select got no rule ids", file=sys.stderr)
        return EXIT_USAGE
    if args.jobs < 1:
        print(f"repro-lint: --jobs must be positive, got {args.jobs}", file=sys.stderr)
        return EXIT_USAGE

    try:
        config = _resolve_config(args)
    except FileNotFoundError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return EXIT_USAGE

    known_ids: Set[str] = set(file_registry)
    if args.project:
        known_ids |= set(project_registry)
    if args.flows:
        known_ids |= set(flow_registry)
    if args.tensors:
        known_ids |= set(tensor_registry)
    unknown = [
        rule_id
        for rule_id in (config.enable or []) + list(config.disable)
        if rule_id not in known_ids
    ]
    if unknown:
        missing_modes = []
        if not args.project:
            missing_modes.append("RL1xx rules need --project")
        if not args.flows:
            missing_modes.append("RL2xx rules need --flows")
        if not args.tensors:
            missing_modes.append("RL3xx rules need --tensors")
        hint = f" ({', '.join(missing_modes)})" if missing_modes else ""
        print(
            f"repro-lint: unknown rule id(s): {', '.join(sorted(set(unknown)))}"
            + hint,
            file=sys.stderr,
        )
        return EXIT_USAGE

    selected = config.selected_rule_ids(sorted(known_ids))
    file_rule_ids = [rule_id for rule_id in selected if rule_id in file_registry]
    project_rule_ids = [rule_id for rule_id in selected if rule_id in project_registry]
    flow_rule_ids = [rule_id for rule_id in selected if rule_id in flow_registry]
    tensor_rule_ids = [rule_id for rule_id in selected if rule_id in tensor_registry]

    paths = list(args.paths) or list(config.paths)
    missing = [path for path in paths if not Path(path).exists()]
    if missing:
        print(f"repro-lint: path(s) not found: {', '.join(missing)}", file=sys.stderr)
        return EXIT_USAGE

    if args.fix:
        from repro.lint.fixes import fix_paths

        files_changed, applied = fix_paths(paths)
        print(
            f"repro-lint: applied {applied} fix(es) in {files_changed} file(s)",
            file=sys.stderr,
        )

    if args.project:
        cache = None
        if not args.no_cache:
            from repro.lint.arrays import tensor_tables_digest

            signature = ruleset_signature(
                _tool_version(),
                file_rule_ids,
                project_rule_ids,
                flow_rule_ids,
                tensor_rule_ids,
                [tensor_tables_digest()] if tensor_rule_ids else [],
            )
            cache = LintCache.load(_cache_path(config), signature)
        report = lint_project(
            paths,
            rule_ids=file_rule_ids,
            project_rule_ids=project_rule_ids,
            flow_rule_ids=flow_rule_ids,
            tensor_rule_ids=tensor_rule_ids,
            jobs=args.jobs,
            cache=cache,
        )
        if (
            project_rule_ids or flow_rule_ids or tensor_rule_ids
        ) and not report.analyzed_project:
            print(
                "repro-lint: --project found no importable 'repro' package "
                "under the given paths; RL1xx/RL2xx/RL3xx rules were skipped",
                file=sys.stderr,
            )
    else:
        engine = LintEngine(
            rules=[file_registry[rule_id]() for rule_id in file_rule_ids]
        )
        findings = engine.lint_paths(paths)
        report = ProjectReport(
            findings=findings,
            files_checked=engine.files_checked,
            suppressed=engine.suppressed_count,
        )

    baseline_path = _default_baseline(args, config)
    if args.update_baseline:
        if baseline_path is None:
            baseline_path = Path(DEFAULT_BASELINE_NAME)
        count = write_baseline(report.findings, baseline_path)
        print(
            f"repro-lint: wrote {count} finding(s) to {baseline_path}",
            file=sys.stderr,
        )
        return EXIT_CLEAN

    findings = report.findings
    baselined = stale = 0
    if baseline_path is not None and baseline_path.is_file():
        try:
            baseline = load_baseline(baseline_path)
        except (ValueError, json.JSONDecodeError) as exc:
            print(f"repro-lint: {exc}", file=sys.stderr)
            return EXIT_USAGE
        findings, baselined, stale = apply_baseline(findings, baseline)

    if args.format == "json":
        print(
            _render_json(
                findings,
                report.files_checked,
                report.suppressed,
                baselined=baselined,
                stale_baseline=stale,
            )
        )
    elif args.format == "sarif":
        print(
            render_sarif(
                findings,
                _rule_metadata(selected),
                tool_version=_tool_version(),
            )
        )
    else:
        print(
            _render_text(
                findings,
                report.files_checked,
                report.suppressed,
                baselined=baselined,
                stale_baseline=stale,
            )
        )
    has_errors = any(f.severity is Severity.ERROR for f in findings)
    return EXIT_FINDINGS if has_errors else EXIT_CLEAN


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
