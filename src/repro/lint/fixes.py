"""Autofixes for the mechanical rules (``repro-lint --fix``).

Three rules are mechanical enough to fix without judgement:

* **RL004** (mutable default argument): the default becomes ``None`` and
  a guard recreating the original value is inserted at the top of the
  body, after the docstring::

      def f(items=[]):          def f(items=None):
          return items      ->      if items is None:
                                        items = []
                                    return items

* **RL006** (blanket exception swallowing): the no-op handler body is
  replaced by a re-raise stub, turning silent loss into a visible
  failure the author must then handle deliberately::

      except Exception:         except Exception:
          pass              ->      raise  # reprolint: re-raise (was swallowed)

* **RL304** (unstable sort order): ``np.sort``/``np.argsort`` calls --
  and ``.argsort()`` method calls, which only arrays have -- gain an
  explicit stable kind::

      np.argsort(weights)   ->  np.argsort(weights, kind="stable")

  Bare ``.sort()`` method calls are left alone: the receiver could be
  a plain list, whose ``sort`` takes no ``kind``.  Calls that already
  pass any ``kind=`` (or ``**kwargs``) are untouched, so the fix is
  idempotent and never overrides an explicit choice.

RL004/RL006 fixes are driven by the rules' own findings (via the
engine); RL304 is a project-tier rule, so its fixer matches the sites
syntactically but honours the same inline suppression comments.  A
site the linter would not flag is never rewritten, and every fix is
idempotent: the rewritten code no longer triggers the rule, so a
second ``--fix`` pass is a no-op.  Sites the surgery cannot handle
safely (lambdas, single-line ``def f(x=[]): ...`` bodies) are left
alone and keep their finding.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.engine import LintEngine, registered_rules, suppressions
from repro.lint.rules import NoMutableDefaultArgsRule, NoSwallowedExceptionsRule

#: Rules ``--fix`` knows how to rewrite.  RL004/RL006 are per-file
#: (engine-driven); RL304 is tensor-tier and matched syntactically.
FIXABLE_RULES = ("RL004", "RL006", "RL304")

#: ``kind=`` spellings that already guarantee a stable order (kept in
#: sync with ``repro.lint.arrays.STABLE_SORT_KINDS`` without importing
#: it: the fixer must not pull the tensor tier into per-file runs).
_STABLE_KINDS = frozenset({"stable", "mergesort"})

_RERAISE_STUB = "raise  # reprolint: re-raise (was swallowed)"

#: One text edit: replace [start_line, start_col) .. [end_line, end_col)
#: (1-based lines, 0-based cols) with ``text`` (may contain newlines).
_Edit = Tuple[int, int, int, int, str]


def fix_source(source: str, path: str = "<string>") -> Tuple[str, int]:
    """Apply every possible RL004/RL006 fix to ``source``.

    Returns ``(new_source, applied)`` where ``applied`` counts the
    individual rewrites.  ``new_source is source`` when nothing applied.
    """
    registry = registered_rules()
    engine = LintEngine(
        rules=[
            registry[rule_id]()
            for rule_id in FIXABLE_RULES
            if rule_id in registry
        ]
    )
    findings = engine.lint_source(source, path)
    anchors: Set[Tuple[str, int, int]] = {
        (f.rule_id, f.line, f.col) for f in findings
    }
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError:
        return source, 0
    silenced = suppressions(source)
    lines = source.split("\n")
    edits: List[_Edit] = []
    applied = 0
    numpy_names = _numpy_aliases(tree)
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            applied += _collect_default_fixes(node, anchors, lines, edits)
        elif isinstance(node, ast.ExceptHandler):
            applied += _collect_swallow_fixes(node, anchors, edits)
        elif isinstance(node, ast.Call):
            applied += _collect_stable_sort_fixes(
                node, numpy_names, silenced, lines, edits
            )
    if not edits:
        return source, 0
    _apply_edits(lines, edits)
    return "\n".join(lines), applied


def fix_paths(paths: List[str]) -> Tuple[int, int]:
    """Fix every python file under ``paths`` in place.

    Returns ``(files_changed, fixes_applied)``.
    """
    from repro.lint.engine import iter_python_files

    files_changed = 0
    total = 0
    for file_path in iter_python_files(paths):
        original = file_path.read_text(encoding="utf-8")
        fixed, applied = fix_source(original, str(file_path))
        if applied:
            file_path.write_text(fixed, encoding="utf-8")
            files_changed += 1
            total += applied
    return files_changed, total


def _anchor(node: ast.AST) -> Tuple[int, int]:
    return getattr(node, "lineno", 0), getattr(node, "col_offset", -1) + 1


def _iter_named_defaults(
    args: ast.arguments,
) -> Iterator[Tuple[str, ast.expr]]:
    """(parameter name, default node) pairs, in signature order."""
    positional = list(args.posonlyargs) + list(args.args)
    defaults = list(args.defaults)
    for arg, default in zip(positional[len(positional) - len(defaults):], defaults):
        yield arg.arg, default
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        if default is not None:
            yield arg.arg, default


def _collect_default_fixes(
    node: ast.AST,
    anchors: Set[Tuple[str, int, int]],
    lines: List[str],
    edits: List[_Edit],
) -> int:
    """RL004: ``None``-out flagged defaults and insert the guards."""
    body = node.body
    insert_at, indent = _body_insertion_point(body, lines)
    fixes: List[Tuple[str, str]] = []  # (param, original default text)
    for name, default in _iter_named_defaults(node.args):
        line, col = _anchor(default)
        if ("RL004", line, col) not in anchors:
            continue
        end_line = getattr(default, "end_lineno", None)
        end_col = getattr(default, "end_col_offset", None)
        if end_line is None or end_col is None:
            continue
        if insert_at is None or line >= insert_at:
            continue  # single-line def (or default below body): unsafe
        segment = ast.get_source_segment("\n".join(lines), default)
        if segment is None:
            continue
        edits.append((line, default.col_offset, end_line, end_col, "None"))
        fixes.append((name, segment))
    if not fixes:
        return 0
    guard_lines: List[str] = []
    for name, segment in fixes:
        guard_lines.append(f"{indent}if {name} is None:")
        for index, segment_line in enumerate(segment.split("\n")):
            prefix = f"{indent}    {name} = " if index == 0 else ""
            guard_lines.append(prefix + segment_line)
    edits.append((insert_at, 0, insert_at, 0, "\n".join(guard_lines) + "\n"))
    return len(fixes)


def _body_insertion_point(
    body: List[ast.stmt], lines: List[str]
) -> Tuple[Optional[int], str]:
    """Line (1-based) to insert guards before, and the body indentation.

    Guards go after a leading docstring.  Returns ``(None, "")`` when
    there is no safe whole-line insertion point (one-line defs).
    """
    if not body:
        return None, ""
    first = body[0]
    is_docstring = (
        isinstance(first, ast.Expr)
        and isinstance(first.value, ast.Constant)
        and isinstance(first.value.value, str)
    )
    target = body[1] if is_docstring and len(body) > 1 else first
    if is_docstring and len(body) == 1:
        # Body is only a docstring: insert after its last line.
        end = getattr(first, "end_lineno", None)
        if end is None:
            return None, ""
        return end + 1, " " * first.col_offset
    line = getattr(target, "lineno", None)
    col = getattr(target, "col_offset", 0)
    if line is None or col == 0:
        return None, ""
    text = lines[line - 1] if 0 < line <= len(lines) else ""
    if text[:col].strip():
        return None, ""  # statement does not start the line: one-liner def
    return line, " " * col


def _collect_swallow_fixes(
    handler: ast.ExceptHandler,
    anchors: Set[Tuple[str, int, int]],
    edits: List[_Edit],
) -> int:
    """RL006: replace the no-op blanket handler body with a re-raise."""
    line, col = _anchor(handler)
    if ("RL006", line, col) not in anchors:
        return 0
    if handler.type is None:
        return 0  # bare except: naming the right exception needs a human
    if not handler.body or not all(
        NoSwallowedExceptionsRule._is_noop(stmt) for stmt in handler.body
    ):
        return 0
    first, last = handler.body[0], handler.body[-1]
    end_line = getattr(last, "end_lineno", None)
    end_col = getattr(last, "end_col_offset", None)
    if end_line is None or end_col is None:
        return 0
    edits.append(
        (first.lineno, first.col_offset, end_line, end_col, _RERAISE_STUB)
    )
    return 1


def _numpy_aliases(tree: ast.AST) -> Set[str]:
    """Local names bound to the numpy package (``np``)."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    aliases.add(alias.asname or "numpy")
    return aliases


def _collect_stable_sort_fixes(
    node: ast.Call,
    numpy_names: Set[str],
    silenced: Dict[int, Set[str]],
    lines: List[str],
    edits: List[_Edit],
) -> int:
    """RL304: add ``kind="stable"`` to a sort call missing it."""
    func = node.func
    if not isinstance(func, ast.Attribute):
        return 0
    is_np_sort = (
        func.attr in ("sort", "argsort")
        and isinstance(func.value, ast.Name)
        and func.value.id in numpy_names
    )
    # Only .argsort() among the methods: a bare .sort() receiver could
    # be a plain list, whose sort() takes no kind kwarg.
    is_method_argsort = func.attr == "argsort" and not is_np_sort
    if not (is_np_sort or is_method_argsort):
        return 0
    for keyword in node.keywords:
        if keyword.arg == "kind" or keyword.arg is None:  # kind= or **kwargs
            return 0
    line = getattr(node, "lineno", 0)
    if "RL304" in silenced.get(0, set()) or "RL304" in silenced.get(line, set()):
        return 0
    # Anchor after the last argument (works for multi-line calls); with
    # no arguments, just inside the closing paren.
    operands = list(node.args) + [kw.value for kw in node.keywords]
    if operands:
        last = max(
            operands,
            key=lambda expr: (
                getattr(expr, "end_lineno", 0),
                getattr(expr, "end_col_offset", 0),
            ),
        )
        at_line = getattr(last, "end_lineno", None)
        at_col = getattr(last, "end_col_offset", None)
        insertion = ', kind="stable"'
    else:
        at_line = getattr(node, "end_lineno", None)
        at_col = getattr(node, "end_col_offset", None)
        at_col = at_col - 1 if at_col is not None else None
        insertion = 'kind="stable"'
    if at_line is None or at_col is None or at_col < 0:
        return 0
    text = lines[at_line - 1] if 0 < at_line <= len(lines) else ""
    if at_col > len(text):
        return 0
    edits.append((at_line, at_col, at_line, at_col, insertion))
    return 1


def _apply_edits(lines: List[str], edits: List[_Edit]) -> None:
    """Apply non-overlapping edits in reverse document order, so earlier
    positions stay valid while later text is rewritten."""
    for start_line, start_col, end_line, end_col, text in sorted(
        edits, key=lambda e: (e[0], e[1]), reverse=True
    ):
        prefix = lines[start_line - 1][:start_col]
        suffix = lines[end_line - 1][end_col:]
        lines[start_line - 1 : end_line] = (prefix + text + suffix).split("\n")


# Re-exported for tests that want the rule's own mutability predicate.
_is_mutable_default = NoMutableDefaultArgsRule._is_mutable
