"""Incremental lint cache (``.reprolint-cache.json``).

Project-mode runs (``--project`` / ``--flows``) memoize two things:

* **per-file results** -- keyed by the file's sha256 content hash, so a
  warm run re-lints only files whose bytes changed;
* **the whole-program pass** -- import graph, call graph, flow analysis
  and the RL1xx/RL2xx rules are one indivisible analysis, so its result
  is keyed by a *tree hash* over every (path, sha256) pair in the run:
  any changed, added, or removed file invalidates it as a unit.

Both are guarded by a **ruleset signature** combining the tool version,
:data:`RULESET_VERSION`, and the exact rule-id selection; bumping
``RULESET_VERSION`` on any behavioural rule change drops every stale
entry at once.  Cache hits replay stored findings byte-identically (the
stored form is :meth:`Finding.as_dict`, reversed by ``from_dict``), so
cached and uncached runs render the same output -- the cache is a pure
speedup, never a source of drift.  ``--no-cache`` opts out entirely.

The cache file is a plain JSON document; a corrupt, unreadable, or
mismatched-schema file is treated as empty, never an error.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lint.findings import Finding

#: The ``schema`` field of the cache document.
CACHE_SCHEMA = "repro-lint-cache/1"
#: Conventional cache file name, next to pyproject.toml.
DEFAULT_CACHE_NAME = ".reprolint-cache.json"
#: Bump whenever any rule's behaviour changes: invalidates every entry.
#: 2: tensor tier (RL301-RL305) joined the signature, plus the numpy
#: intrinsic tables digest (see ``repro.lint.arrays``).
RULESET_VERSION = 2


def file_sha(path: str) -> str:
    """sha256 of the file's bytes (the per-file cache key)."""
    return hashlib.sha256(Path(path).read_bytes()).hexdigest()


def ruleset_signature(
    tool_version: str, *rule_id_groups: Sequence[str]
) -> str:
    """Digest of everything that could change findings besides sources."""
    digest = hashlib.sha256()
    digest.update(f"{tool_version}|{RULESET_VERSION}".encode())
    for group in rule_id_groups:
        digest.update(("|" + ",".join(sorted(group))).encode())
    return digest.hexdigest()


def tree_hash(shas: Dict[str, str]) -> str:
    """Digest of the whole file set (the whole-program cache key)."""
    digest = hashlib.sha256()
    for path in sorted(shas):
        digest.update(f"{path}:{shas[path]}\n".encode())
    return digest.hexdigest()


class LintCache:
    """One loaded cache document, bound to a ruleset signature."""

    def __init__(self, path: Path, signature: str) -> None:
        self.path = path
        self.signature = signature
        self._files: Dict[str, dict] = {}
        self._project: Optional[dict] = None
        self._dirty = False
        self.hits = 0
        self.misses = 0

    # -- persistence --------------------------------------------------

    @classmethod
    def load(cls, path: Path, signature: str) -> "LintCache":
        cache = cls(path, signature)
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return cache
        if (
            not isinstance(document, dict)
            or document.get("schema") != CACHE_SCHEMA
            or document.get("signature") != signature
        ):
            return cache  # different tool/ruleset: start fresh
        files = document.get("files")
        if isinstance(files, dict):
            cache._files = files
        project = document.get("project")
        if isinstance(project, dict):
            cache._project = project
        return cache

    def save(self) -> None:
        if not self._dirty:
            return
        document = {
            "schema": CACHE_SCHEMA,
            "signature": self.signature,
            "files": self._files,
            "project": self._project,
        }
        try:
            self.path.write_text(
                json.dumps(document, indent=1, sort_keys=True) + "\n",
                encoding="utf-8",
            )
        except OSError:
            pass  # a read-only tree just runs uncached

    # -- per-file entries ---------------------------------------------

    def get_file(
        self, path: str, sha: str
    ) -> Optional[Tuple[List[Finding], int]]:
        entry = self._files.get(path)
        if entry is None or entry.get("sha") != sha:
            self.misses += 1
            return None
        try:
            findings = [Finding.from_dict(raw) for raw in entry["findings"]]
            suppressed = int(entry["suppressed"])
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return findings, suppressed

    def put_file(
        self, path: str, sha: str, findings: List[Finding], suppressed: int
    ) -> None:
        self._files[path] = {
            "sha": sha,
            "findings": [finding.as_dict() for finding in findings],
            "suppressed": suppressed,
        }
        self._dirty = True

    def prune(self, live_paths: Sequence[str]) -> None:
        """Drop entries for files no longer part of the run."""
        live = set(live_paths)
        stale = [path for path in self._files if path not in live]
        for path in stale:
            del self._files[path]
            self._dirty = True

    # -- the whole-program entry --------------------------------------

    def get_project(
        self, key: str
    ) -> Optional[Tuple[List[Finding], int, bool]]:
        entry = self._project
        if entry is None or entry.get("tree") != key:
            return None
        try:
            findings = [Finding.from_dict(raw) for raw in entry["findings"]]
            return findings, int(entry["suppressed"]), bool(entry["analyzed"])
        except (KeyError, TypeError, ValueError):
            return None

    def put_project(
        self, key: str, findings: List[Finding], suppressed: int, analyzed: bool
    ) -> None:
        self._project = {
            "tree": key,
            "findings": [finding.as_dict() for finding in findings],
            "suppressed": suppressed,
            "analyzed": analyzed,
        }
        self._dirty = True
