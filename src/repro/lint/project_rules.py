"""Whole-program rules (RL101-RL106), run by ``repro-lint --project``.

Unlike the per-file rules these see the entire ``repro`` package at
once: the import graph, a conservative call graph, and every module's
AST.  They encode the cross-module invariants the paper's statistics
depend on -- replicates stay i.i.d. only while worker processes share no
mutable state, draw from registry-owned streams, and reduce results in a
deterministic order.

The architecture the layering rule (RL101) enforces::

    core ──► sim ──► dca ──► {grid, mapreduce, volunteer} ──► parallel
                                                                  │
    sat ──► volunteer          replication (core, sim)            ▼
                               bench / lint (tooling)        experiments

expressed precisely by :data:`ALLOWED_IMPORTS`.
"""

from __future__ import annotations

import abc
import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple, Type

from repro.lint.callgraph import (
    CallGraph,
    FunctionInfo,
    ModuleScope,
    build_callgraph,
    resolve_reference,
)
from repro.lint.dataflow import (
    MUTATOR_METHODS,
    ORDER_SENSITIVE_REDUCERS,
    RNG_DRAW_ATTRS,
    draws_rng,
    escaping_expressions,
    is_setish_expr,
    local_bindings,
    mutable_module_globals,
    mutated_names,
    setish_names,
    unseeded_random_calls,
)
from repro.lint.findings import Finding, Severity
from repro.lint.graph import ImportGraph, ProjectModule
from repro.lint.rules import _GLOBAL_DRAWS

#: The allowed-import DAG between ``repro`` subpackages.  A package may
#: always import itself; ``""`` is the top-level ``repro/__init__``,
#: which may import anything (it is the public facade).  Tooling layers
#: (``bench``, ``lint``) sit above everything they measure or analyze.
ALLOWED_IMPORTS: Dict[str, FrozenSet[str]] = {
    "core": frozenset(),
    # The telemetry substrate sits below everything that records into it;
    # it imports nothing and is importable from every layer.
    "obs": frozenset(),
    "sim": frozenset({"core", "obs"}),
    "sat": frozenset({"core", "obs"}),
    "dca": frozenset({"core", "sim", "obs"}),
    "replication": frozenset({"core", "sim", "obs"}),
    "grid": frozenset({"core", "sim", "dca", "obs"}),
    "mapreduce": frozenset({"core", "sim", "dca", "obs"}),
    "volunteer": frozenset({"core", "sim", "sat", "dca", "obs"}),
    "parallel": frozenset({"core", "sim", "dca", "volunteer", "obs"}),
    "experiments": frozenset(
        {
            "core",
            "sim",
            "sat",
            "dca",
            "replication",
            "grid",
            "mapreduce",
            "volunteer",
            "parallel",
            "obs",
        }
    ),
    "bench": frozenset(
        {
            "core",
            "sim",
            "sat",
            "dca",
            "replication",
            "grid",
            "mapreduce",
            "volunteer",
            "parallel",
            "experiments",
            "obs",
        }
    ),
    "lint": frozenset(
        {
            "core",
            "sim",
            "sat",
            "dca",
            "replication",
            "grid",
            "mapreduce",
            "volunteer",
            "parallel",
            "obs",
        }
    ),
}


@dataclass
class ProjectContext:
    """Everything a project rule needs: graph, call graph, modules."""

    graph: ImportGraph
    callgraph: CallGraph

    @classmethod
    def build(cls, graph: ImportGraph) -> "ProjectContext":
        return cls(graph=graph, callgraph=build_callgraph(graph))

    @property
    def modules(self) -> Dict[str, ProjectModule]:
        return self.graph.modules


class ProjectRule(abc.ABC):
    """Base class for whole-program rules."""

    rule_id: str = "RL199"
    summary: str = ""
    severity: Severity = Severity.ERROR

    @abc.abstractmethod
    def check(self, project: ProjectContext) -> Iterator[Finding]:
        """Yield findings over the whole project."""

    def finding(
        self, module: ProjectModule, node: Optional[ast.AST], message: str
    ) -> Finding:
        return Finding(
            path=module.path,
            line=getattr(node, "lineno", 1) if node is not None else 1,
            col=(getattr(node, "col_offset", 0) + 1) if node is not None else 1,
            rule_id=self.rule_id,
            severity=self.severity,
            message=message,
        )


_PROJECT_REGISTRY: Dict[str, Type[ProjectRule]] = {}


def register_project(cls: Type[ProjectRule]) -> Type[ProjectRule]:
    """Class decorator adding a project rule to the registry."""
    if cls.rule_id in _PROJECT_REGISTRY:
        raise ValueError(f"duplicate project rule id {cls.rule_id}")
    _PROJECT_REGISTRY[cls.rule_id] = cls
    return cls


def registered_project_rules() -> Dict[str, Type[ProjectRule]]:
    """The project-rule registry, keyed by rule id."""
    return dict(_PROJECT_REGISTRY)


@register_project
class LayeringRule(ProjectRule):
    """RL101: package imports must follow the architecture DAG, and the
    module import graph must stay acyclic.  A lower layer importing a
    higher one couples the simulation substrate to its consumers; a
    cycle makes import order (and thus module init effects) fragile."""

    rule_id = "RL101"
    summary = "package imports must follow the layering DAG; no import cycles"

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        # One finding per (violating module, target package): every
        # offending module gets its own report -- so a new violation in a
        # second file cannot hide behind a baselined one -- without
        # repeating a module's identical imports line by line.
        flagged: Set[Tuple[str, str]] = set()
        unknown_pkgs: Set[str] = set()
        edges = sorted(
            project.graph.edges, key=lambda e: (e.source, e.lineno, e.col)
        )
        for edge in edges:
            source = project.modules.get(edge.source)
            target = project.modules.get(edge.target)
            if source is None or target is None:
                continue
            source_pkg, target_pkg = source.package, target.package
            if source_pkg == "":
                continue  # repro/__init__ is the facade; it may import anything
            if source_pkg == target_pkg:
                continue
            allowed = ALLOWED_IMPORTS.get(source_pkg)
            if allowed is None:
                if source_pkg not in unknown_pkgs:
                    unknown_pkgs.add(source_pkg)
                    yield self.finding(
                        source,
                        None,
                        f"package '{source_pkg}' is not in the layering map "
                        "(ALLOWED_IMPORTS in repro/lint/project_rules.py); add it "
                        "with an explicit allowed-import set",
                    )
                continue
            if target_pkg != "" and target_pkg not in allowed:
                if (edge.source, target_pkg) in flagged:
                    continue
                flagged.add((edge.source, target_pkg))
                yield self.finding(
                    source,
                    _node_at(source, edge.lineno),
                    f"layering violation: '{source_pkg}' may not import "
                    f"'{target_pkg}' (allowed: "
                    f"{', '.join(sorted(allowed)) or 'nothing'}); "
                    f"imports {edge.target}",
                )
        for cycle in project.graph.cycles():
            anchor_name = cycle[0]
            module = project.modules[anchor_name]
            lineno = 1
            for edge in project.graph.edges:
                if edge.source == anchor_name and edge.target in cycle:
                    lineno = edge.lineno
                    break
            yield self.finding(
                module,
                _node_at(module, lineno),
                f"import cycle between modules: {' -> '.join(cycle)} -> {cycle[0]}",
            )


def _node_at(module: ProjectModule, lineno: int) -> ast.AST:
    """A synthetic AST anchor at ``lineno`` for finding locations."""
    anchor = ast.Pass()
    anchor.lineno = lineno
    anchor.col_offset = 0
    return anchor


#: Module paths of the deterministic fan-out entry points.
_PARALLEL_MAP_HOMES = ("repro.parallel", "repro.parallel.engine")


@dataclass
class WorkerRef:
    """One callable submitted to a process pool."""

    module: ProjectModule
    call: ast.Call
    worker: ast.expr
    #: Enclosing top-level function/method qualname, if any.
    enclosing: Optional[str]
    #: Nested function and lambda-valued names visible at the call site.
    nested_defs: FrozenSet[str]


def _scope_nodes(module: ProjectModule, func_node: Optional[ast.AST]) -> Iterator[ast.AST]:
    """AST nodes belonging to one scope from :func:`_top_level_callables`.

    A top-level function owns everything inside it (nested defs
    included); the module-level scope owns only statements outside
    top-level functions and classes, so no node is visited twice.
    """
    if func_node is not None:
        yield from ast.walk(func_node)
        return
    for stmt in module.context.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield from ast.walk(stmt)


def _iter_pool_call_sites(project: ProjectContext) -> Iterator[WorkerRef]:
    """Every ``parallel_map(worker, ...)`` / ``pool.submit(worker, ...)``
    call in the project, with enough scope context to classify the worker."""
    for name, module in sorted(project.modules.items()):
        scope = project.callgraph.scopes[name]
        pool_names = _executor_locals(module.context.tree)
        for enclosing, func_node in _top_level_callables(module):
            nested = _nested_callable_names(func_node) if func_node is not None else frozenset()
            for node in _scope_nodes(module, func_node):
                if not isinstance(node, ast.Call):
                    continue
                worker = _pool_worker_arg(node, scope, pool_names)
                if worker is not None:
                    yield WorkerRef(
                        module=module,
                        call=node,
                        worker=worker,
                        enclosing=enclosing,
                        nested_defs=nested,
                    )


def _top_level_callables(
    module: ProjectModule,
) -> Iterator[Tuple[Optional[str], Optional[ast.AST]]]:
    """(qualname, node) for each top-level function/method, plus one
    ``(None, None)`` entry for module-level code."""
    yield None, None
    for node in module.context.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield f"{module.name}:{node.name}", node
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield f"{module.name}:{node.name}.{item.name}", item


def _nested_callable_names(func: ast.AST) -> FrozenSet[str]:
    """Names of nested defs and lambda-valued locals inside ``func`` --
    none of which survive pickling."""
    out: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not func:
            out.add(node.name)
        elif isinstance(node, ast.Assign) and isinstance(node.value, ast.Lambda):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    out.add(target.id)
    return frozenset(out)


def _executor_locals(tree: ast.Module) -> FrozenSet[str]:
    """Names bound to a ``ProcessPoolExecutor`` instance anywhere in the
    module (``with ProcessPoolExecutor(...) as pool`` or assignment)."""
    out: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if (
                    _is_executor_ctor(item.context_expr)
                    and item.optional_vars is not None
                    and isinstance(item.optional_vars, ast.Name)
                ):
                    out.add(item.optional_vars.id)
        elif isinstance(node, ast.Assign) and _is_executor_ctor(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    out.add(target.id)
    return frozenset(out)


def _is_executor_ctor(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", "")
    return name == "ProcessPoolExecutor"


def _pool_worker_arg(
    call: ast.Call, scope: ModuleScope, pool_names: FrozenSet[str]
) -> Optional[ast.expr]:
    """The worker argument if ``call`` submits work to a process pool."""
    func = call.func
    # parallel_map(worker, items) via from-import (possibly aliased).
    if isinstance(func, ast.Name):
        imported = scope.from_imports.get(func.id)
        if imported and imported[0] in _PARALLEL_MAP_HOMES and imported[1] == "parallel_map":
            return _first_arg(call, "worker")
    # engine.parallel_map(...) / parallel.parallel_map(...).
    if isinstance(func, ast.Attribute) and func.attr == "parallel_map":
        return _first_arg(call, "worker")
    # pool.submit(worker, ...) / pool.map(worker, items).
    if (
        isinstance(func, ast.Attribute)
        and func.attr in ("submit", "map")
        and isinstance(func.value, ast.Name)
        and func.value.id in pool_names
    ):
        return _first_arg(call, "fn")
    return None


def _first_arg(call: ast.Call, keyword: str) -> Optional[ast.expr]:
    if call.args:
        return call.args[0]
    for kw in call.keywords:
        if kw.arg == keyword:
            return kw.value
    return None


@register_project
class ParallelSafetyRule(ProjectRule):
    """RL102: callables handed to the process pool must be module-level
    functions -- lambdas, nested functions, and bound methods either
    fail to pickle or smuggle closure state the pool cannot replicate."""

    rule_id = "RL102"
    summary = "pool workers must be module-level picklable functions (no lambdas/closures)"

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        for ref in _iter_pool_call_sites(project):
            yield from self._classify(project, ref, ref.worker)

    def _classify(
        self, project: ProjectContext, ref: WorkerRef, worker: ast.expr
    ) -> Iterator[Finding]:
        if isinstance(worker, ast.Lambda):
            yield self.finding(
                ref.module,
                worker,
                "lambda submitted to a process pool cannot be pickled; "
                "define a module-level worker function",
            )
            return
        if isinstance(worker, ast.Call):
            # functools.partial(f, ...): classify the wrapped callable.
            func = worker.func
            name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", "")
            if name == "partial" and worker.args:
                yield from self._classify(project, ref, worker.args[0])
            return
        if isinstance(worker, ast.Name):
            if worker.id in ref.nested_defs:
                yield self.finding(
                    ref.module,
                    worker,
                    f"'{worker.id}' is defined inside "
                    f"{ref.enclosing or 'this scope'} and closes over its "
                    "frame; pool workers must be module-level functions",
                )
            return
        if isinstance(worker, ast.Attribute):
            if isinstance(worker.value, ast.Name) and worker.value.id == "self":
                yield self.finding(
                    ref.module,
                    worker,
                    f"bound method self.{worker.attr} submitted to a process "
                    "pool pickles the whole instance (or fails); use a "
                    "module-level function taking explicit state",
                )
            return


def _worker_roots(project: ProjectContext) -> Set[str]:
    """Qualnames of functions that run inside pool worker processes."""
    roots: Set[str] = set()
    for ref in _iter_pool_call_sites(project):
        scope = project.callgraph.scopes[ref.module.name]
        resolved = resolve_reference(
            ref.worker, ref.module, scope, project.graph, project.callgraph.scopes
        )
        if resolved is None and ref.enclosing is not None:
            # parallel_map(self.work, ...): a bound-method worker (RL102
            # flags it, but it still runs in the workers -- reachability
            # rules must see through it).
            worker = ref.worker
            _, _, enclosing_name = ref.enclosing.partition(":")
            class_name = enclosing_name.split(".", 1)[0] if "." in enclosing_name else None
            if (
                class_name is not None
                and isinstance(worker, ast.Attribute)
                and isinstance(worker.value, ast.Name)
                and worker.value.id == "self"
            ):
                resolved = resolve_reference(
                    worker,
                    ref.module,
                    scope,
                    project.graph,
                    project.callgraph.scopes,
                    class_name=class_name,
                )
        if resolved is not None:
            roots.add(resolved)
    return roots


@register_project
class WorkerMutableStateRule(ProjectRule):
    """RL103: functions reachable from a pool worker must not mutate
    module-level mutable state -- each worker process mutates its own
    copy, so the mutation silently diverges between ``jobs=1`` and
    ``jobs=N`` and is lost when the worker exits."""

    rule_id = "RL103"
    summary = "no mutation of module-level mutable state reachable from pool workers"

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        roots = _worker_roots(project)
        if not roots:
            return
        reachable = project.callgraph.reachable(roots)
        globals_by_module: Dict[str, Dict[str, ast.AST]] = {}
        for qualname in sorted(reachable):
            info = project.callgraph.functions[qualname]
            module = project.modules[info.module]
            if info.module not in globals_by_module:
                globals_by_module[info.module] = mutable_module_globals(
                    module.context.tree
                )
            mutable_globals = globals_by_module[info.module]
            if not mutable_globals:
                continue
            locals_ = local_bindings(info.node)
            for name, node in mutated_names(info.node):
                if name in mutable_globals and name not in locals_:
                    yield self.finding(
                        module,
                        node,
                        f"{qualname.split(':', 1)[1]}() mutates module-level "
                        f"'{name}' but is reachable from a process-pool "
                        "worker; per-process mutations diverge between "
                        "jobs=1 and jobs=N and are lost on worker exit",
                    )


@register_project
class UnorderedIterationRule(ProjectRule):
    """RL104: iterating a ``set`` feeds hash order -- which varies with
    PYTHONHASHSEED and across processes -- into whatever consumes the
    loop.  Flag set iteration that reaches an RNG draw or accumulates a
    reduction; wrap the set in ``sorted(...)`` instead."""

    rule_id = "RL104"
    summary = "no unordered set iteration feeding reductions or RNG-consuming code"

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        rng_consumers = self._rng_consuming_functions(project)
        for name, module in sorted(project.modules.items()):
            scope = project.callgraph.scopes[name]
            for qualname, func_node in _top_level_callables(module):
                known = frozenset(
                    setish_names(func_node, module.context.tree)
                    if func_node is not None
                    else setish_names(module.context.tree)
                )
                yield from self._check_scope(
                    project, module, scope, func_node, known, rng_consumers
                )

    def _check_scope(
        self,
        project: ProjectContext,
        module: ProjectModule,
        scope: ModuleScope,
        func_node: Optional[ast.AST],
        known: frozenset,
        rng_consumers: Set[str],
    ) -> Iterator[Finding]:
        for node in _scope_nodes(module, func_node):
            if isinstance(node, ast.For) and is_setish_expr(node.iter, known):
                reason = self._loop_reason(
                    project, module, scope, node, rng_consumers
                )
                if reason is not None:
                    yield self.finding(
                        module,
                        node.iter,
                        f"iteration over an unordered set {reason}; iterate "
                        "sorted(...) so the order is deterministic",
                    )
            elif isinstance(node, ast.Call):
                func = node.func
                name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", "")
                if name not in ORDER_SENSITIVE_REDUCERS or not node.args:
                    continue
                # reduce(f, iterable) takes the iterable second.
                candidate = node.args[1] if name == "reduce" and len(node.args) > 1 else node.args[0]
                if is_setish_expr(candidate, known) or self._comp_over_set(
                    candidate, known
                ):
                    yield self.finding(
                        module,
                        candidate,
                        f"{name}() over an unordered set depends on hash "
                        "order; wrap the set in sorted(...) first",
                    )

    @staticmethod
    def _comp_over_set(node: ast.AST, known: frozenset) -> bool:
        if isinstance(node, (ast.GeneratorExp, ast.ListComp)):
            return any(
                is_setish_expr(gen.iter, known) for gen in node.generators
            )
        return False

    def _loop_reason(
        self,
        project: ProjectContext,
        module: ProjectModule,
        scope: ModuleScope,
        loop: ast.For,
        rng_consumers: Set[str],
    ) -> Optional[str]:
        loop_locals = {
            n.id for n in ast.walk(loop.target) if isinstance(n, ast.Name)
        }
        for node in loop.body:
            for sub in ast.walk(node):
                if isinstance(sub, ast.Call):
                    if isinstance(sub.func, ast.Attribute) and sub.func.attr in RNG_DRAW_ATTRS:
                        return "draws from an RNG stream per element"
                    resolved = resolve_reference(
                        sub.func, module, scope, project.graph, project.callgraph.scopes
                    )
                    if resolved in rng_consumers:
                        return (
                            f"calls {resolved.split(':', 1)[1]}(), which "
                            "consumes an RNG stream"
                        )
                elif isinstance(sub, ast.AugAssign) and isinstance(
                    sub.target, ast.Name
                ):
                    if sub.target.id not in loop_locals:
                        return (
                            f"accumulates into '{sub.target.id}' (an "
                            "order-sensitive reduction)"
                        )
        return None

    @staticmethod
    def _rng_consuming_functions(project: ProjectContext) -> Set[str]:
        """Functions that (transitively) draw from an RNG stream."""
        direct = {
            qualname
            for qualname, info in project.callgraph.functions.items()
            if draws_rng(info.node)
        }
        return project.callgraph.callers_closure(direct)


@register_project
class RngProvenanceRule(ProjectRule):
    """RL105: RNG streams come from the registry.  A function that is
    *handed* a stream must not mint its own ``random.Random``, and an
    unseeded ``random.Random()`` (OS-entropy seeded, unreplayable) must
    not escape the function that created it."""

    rule_id = "RL105"
    summary = "no private RNG minting in stream-taking functions; unseeded RNGs must not escape"

    #: Parameter names that mark a function as registry-stream-taking.
    STREAM_PARAMS = frozenset({"rng", "stream"})

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        for qualname in sorted(project.callgraph.functions):
            info = project.callgraph.functions[qualname]
            module = project.modules[info.module]
            yield from self._check_function(module, info)
        for name, module in sorted(project.modules.items()):
            # Module-level unseeded Random(): a global escape by definition.
            top_level = [
                node
                for node in module.context.tree.body
                if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
            ]
            for stmt in top_level:
                for call in unseeded_random_calls(_wrap(stmt)):
                    yield self.finding(
                        module,
                        call,
                        "module-level random.Random() is seeded from OS "
                        "entropy and cannot be replayed; seed it explicitly "
                        "or use an RngRegistry stream",
                    )

    def _check_function(
        self, module: ProjectModule, info: FunctionInfo
    ) -> Iterator[Finding]:
        node = info.node
        args = getattr(node, "args", None)
        if args is None:
            return
        param_names = {arg.arg for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)}
        stream_params = param_names & self.STREAM_PARAMS | {
            arg.arg
            for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            if _is_random_annotation(arg.annotation)
        }
        if stream_params:
            exempt = _fallback_ctor_ids(node, stream_params)
            for sub in ast.walk(node):
                if _is_random_ctor(sub) and id(sub) not in exempt:
                    yield self.finding(
                        module,
                        sub,
                        f"{info.qualname.split(':', 1)[1]}() is handed a "
                        f"registry stream ({', '.join(sorted(stream_params))}) "
                        "but mints its own random.Random; derive streams from "
                        "the registry so replicates stay i.i.d.",
                    )
        unseeded = set(map(id, unseeded_random_calls(node)))
        if unseeded:
            for expr in escaping_expressions(node):
                for sub in ast.walk(expr):
                    if id(sub) in unseeded:
                        yield self.finding(
                            module,
                            sub,
                            "unseeded random.Random() escapes "
                            f"{info.qualname.split(':', 1)[1]}(); it is "
                            "OS-entropy seeded and the caller cannot replay "
                            "it -- take a seed or a registry stream instead",
                        )
                        unseeded.discard(id(sub))


def _wrap(stmt: ast.stmt) -> ast.Module:
    return ast.Module(body=[stmt], type_ignores=[])


def _is_absent_stream_test(test: ast.AST, params: FrozenSet[str]) -> bool:
    """``param is None`` / ``param == None`` / ``not param`` for a stream param."""
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        return isinstance(test.operand, ast.Name) and test.operand.id in params
    if isinstance(test, ast.Compare) and len(test.ops) == 1:
        if isinstance(test.ops[0], (ast.Is, ast.Eq)):
            pairs = ((test.left, test.comparators[0]), (test.comparators[0], test.left))
            for name, none in pairs:
                if (
                    isinstance(name, ast.Name)
                    and name.id in params
                    and isinstance(none, ast.Constant)
                    and none.value is None
                ):
                    return True
    return False


def _fallback_ctor_ids(node: ast.AST, stream_params: FrozenSet[str]) -> Set[int]:
    """``id()``s of *seeded* Random ctors that only run when the stream
    param is absent -- the ``rng or random.Random(0)`` /
    ``if rng is None:`` default idiom, which is deterministic and fine.
    Unseeded ctors never qualify: an OS-entropy fallback is unreplayable.
    """
    exempt: Set[int] = set()

    def collect(roots: Iterable[ast.AST]) -> None:
        for root in roots:
            for sub in ast.walk(root):
                if _is_random_ctor(sub) and (sub.args or sub.keywords):
                    exempt.add(id(sub))

    for sub in ast.walk(node):
        if isinstance(sub, ast.BoolOp) and isinstance(sub.op, ast.Or):
            if any(
                isinstance(value, ast.Name) and value.id in stream_params
                for value in sub.values
            ):
                collect(sub.values)
        elif isinstance(sub, ast.If) and _is_absent_stream_test(sub.test, stream_params):
            collect(sub.body)
        elif isinstance(sub, ast.IfExp) and _is_absent_stream_test(sub.test, stream_params):
            collect([sub.body, sub.orelse])
    return exempt


def _is_random_ctor(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr == "Random":
        return isinstance(func.value, ast.Name) and func.value.id == "random"
    return isinstance(func, ast.Name) and func.id == "Random"


def _is_random_annotation(annotation: Optional[ast.AST]) -> bool:
    if annotation is None:
        return False
    if isinstance(annotation, ast.Attribute):
        return annotation.attr == "Random"
    if isinstance(annotation, ast.Name):
        return annotation.id == "Random"
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        return annotation.value.endswith("Random")
    return False


@register_project
class PublicApiRule(ProjectRule):
    """RL106: a package's ``__init__.py`` is its public contract.  Every
    name in ``__all__`` must actually be bound there, and every
    ``from repro.x import name`` in an ``__init__`` must name something
    the source module really defines -- otherwise the export list drifts
    from the implementation and imports fail only at use time."""

    rule_id = "RL106"
    summary = "__init__ exports must match definitions (__all__ and re-imports resolve)"

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        for name, module in sorted(project.modules.items()):
            if not module.is_package:
                continue
            scope = project.callgraph.scopes[name]
            yield from self._check_all(project, module, scope)
            yield from self._check_reimports(project, module)

    def _check_all(
        self, project: ProjectContext, module: ProjectModule, scope: ModuleScope
    ) -> Iterator[Finding]:
        for stmt in module.context.tree.body:
            if not isinstance(stmt, ast.Assign):
                continue
            if not any(
                isinstance(t, ast.Name) and t.id == "__all__" for t in stmt.targets
            ):
                continue
            if not isinstance(stmt.value, (ast.List, ast.Tuple)):
                continue
            for element in stmt.value.elts:
                if not (
                    isinstance(element, ast.Constant)
                    and isinstance(element.value, str)
                ):
                    continue
                exported = element.value
                if exported in scope.bindings or exported == "__version__":
                    continue
                if f"{module.name}.{exported}" in project.modules:
                    continue  # a submodule is importable without a binding
                yield self.finding(
                    module,
                    element,
                    f"__all__ exports '{exported}' but {module.name}'s "
                    "__init__ neither defines nor imports it",
                )

    def _check_reimports(
        self, project: ProjectContext, module: ProjectModule
    ) -> Iterator[Finding]:
        for edge in project.graph.edges:
            if edge.source != module.name or not edge.names:
                continue
            target = project.modules.get(edge.target)
            if target is None:
                continue
            target_scope = project.callgraph.scopes[edge.target]
            for imported in edge.names:
                if imported == "*":
                    continue
                if imported in target_scope.bindings:
                    continue
                if f"{edge.target}.{imported}" in project.modules:
                    continue
                yield self.finding(
                    module,
                    _node_at(module, edge.lineno),
                    f"'from {edge.target} import {imported}': "
                    f"{edge.target} does not define '{imported}' at top "
                    "level; the re-export has drifted from the definition",
                )
