"""Flow-sensitive abstract interpretation over the project call graph.

This is the analysis core behind ``repro-lint --flows``.  Where the
RL10x dataflow helpers answer syntactic questions about one expression,
this module *interprets* every function body over the abstract domain of
:mod:`repro.lint.provenance` -- provenance x orderedness -- statement by
statement, in program order:

* assignments, tuple unpacking, attribute stores (``self.x = rng``),
  containers, comprehensions, and conditionals (branch envs are joined
  at the merge point) propagate tags;
* calls to statically resolvable functions are analyzed
  interprocedurally through **bounded context-sensitive summaries**: a
  function is re-interpreted once per distinct tuple of argument
  provenances, memoized, up to :data:`MAX_CONTEXTS` contexts, after
  which the generic summary (stream parameters tagged with synthetic
  ``param:`` labels) is reused.  Recursive cycles get the neutral
  summary -- under-approximate, like the call graph itself;
* origin sites mint lattice points: ``registry.stream("x")`` /
  ``registry.spawn("x")`` tag their result with the literal label,
  seeded ``random.Random(seed)`` with a synthetic per-site label, and
  unseeded ``random.Random()`` with ⊤.

While interpreting, the analysis records the *events* the RL20x rules
consume -- stream draws, stream arguments at call sites, draws from a
stream after it was handed off to a consuming callee, and reductions
over definitely-unordered values -- each anchored to its AST node.

The explicit escape hatch ``# reprolint: stream=<label>`` on an
assignment line overrides the inferred provenance of the assigned value
with the given label (useful when a stream arrives through a path the
interpreter cannot see, e.g. deserialization).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.callgraph import CallGraph, FunctionInfo, ModuleScope, resolve_reference
from repro.lint.dataflow import MUTATOR_METHODS, is_setish_expr, setish_names
from repro.lint.graph import ImportGraph, ProjectModule
from repro.lint.provenance import (
    BOTTOM,
    TOP_UNSEEDED,
    AbstractValue,
    FunctionSummary,
    NEUTRAL_SUMMARY,
    ORDERED_VALUE,
    Orderedness,
    Provenance,
    UNKNOWN_VALUE,
    join_all,
    stream,
)
from repro.lint.rules import _GLOBAL_DRAWS

#: Distinct calling contexts interpreted per function before falling
#: back to the generic summary (the "bounded" in bounded context
#: sensitivity).
MAX_CONTEXTS = 8

#: Method names that consume (draw from) an RNG stream.
DRAW_METHODS = frozenset(_GLOBAL_DRAWS)

#: Parameter names treated as registry/stream-taking (same convention
#: as RL105, plus the registry itself).
STREAM_PARAM_NAMES = frozenset({"rng", "stream", "registry"})

#: Builtins that re-establish a deterministic iteration order.
_ORDERING_CALLS = frozenset({"sorted"})
#: Builtins whose result iterates in hash order.
_UNORDERING_CALLS = frozenset({"set", "frozenset"})
#: Attribute calls returning set-valued results.
_SET_RETURNING_ATTRS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference"}
)
#: Order/provenance-preserving wrappers.
_PRESERVING_CALLS = frozenset({"list", "tuple", "iter", "reversed", "enumerate"})
#: Dict views iterate in insertion order -- deterministic.
_ORDERED_ATTR_CALLS = frozenset({"items", "keys", "values"})
#: Float reductions whose result depends on iteration order.
REDUCER_NAMES = frozenset({"sum", "fsum", "reduce", "accumulate"})

#: ``# reprolint: stream=<label>`` -- explicit provenance annotation.
_STREAM_ANNOTATION_RE = re.compile(r"#\s*reprolint:\s*stream=([\w.:*\-]+)")


@dataclass(frozen=True)
class CreationSite:
    """Where a stream label was minted."""

    module: str
    function: Optional[str]  # qualname, None for module-level code
    lineno: int
    col: int


@dataclass(frozen=True)
class DrawRecord:
    """One draw from a stream-tagged value."""

    module: str
    function: Optional[str]
    node: ast.AST
    value: Provenance
    method: str


@dataclass(frozen=True)
class CallStreamArg:
    """A stream-tagged argument observed at a call site."""

    module: str
    function: Optional[str]
    node: ast.Call
    callee: Optional[str]  # resolved qualname, if any
    arg_index: int
    arg_name: Optional[str]
    value: Provenance


@dataclass(frozen=True)
class ReuseRecord:
    """A draw from a stream after it was handed off to a consuming callee."""

    module: str
    function: Optional[str]
    node: ast.AST
    label: str
    handoff_lineno: int
    callee: Optional[str]


@dataclass(frozen=True)
class UnorderedReduceRecord:
    """A float reduction fed by a definitely-unordered value."""

    module: str
    function: Optional[str]
    node: ast.AST
    reducer: str
    #: True when RL104's syntactic check already covers this site (the
    #: iterable is statically a set expression); RL204 skips those.
    syntactic: bool
    #: Name of the accumulator for loop accumulation events, else "".
    accumulator: str = ""


@dataclass
class FlowEvents:
    """Everything the RL20x rules consume, collected in one pass."""

    draws: List[DrawRecord] = field(default_factory=list)
    call_stream_args: List[CallStreamArg] = field(default_factory=list)
    reuses: List[ReuseRecord] = field(default_factory=list)
    unordered_reduces: List[UnorderedReduceRecord] = field(default_factory=list)
    #: label -> creation sites, for cross-scope sharing diagnostics.
    created_at: Dict[str, List[CreationSite]] = field(default_factory=dict)


def _param_names(node: ast.AST) -> List[str]:
    args = getattr(node, "args", None)
    if args is None:
        return []
    return [
        arg.arg
        for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    ]


def _is_stream_annotation(annotation: Optional[ast.AST]) -> bool:
    if annotation is None:
        return False
    name = ""
    if isinstance(annotation, ast.Attribute):
        name = annotation.attr
    elif isinstance(annotation, ast.Name):
        name = annotation.id
    elif isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        name = annotation.value.rsplit(".", 1)[-1]
    return name in ("Random", "RngRegistry")


def _literal_label(node: ast.AST, const_strings: Dict[str, str]) -> Optional[str]:
    """Static stream label of a ``.stream(...)``/``.spawn(...)`` name arg.

    A literal-prefixed f-string names the whole family (``replicate:*``);
    a module-level string constant (including ``StreamLabel("...")``)
    resolves to its value.  ``None`` means the label is dynamic.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr) and node.values:
        first = node.values[0]
        if (
            isinstance(first, ast.Constant)
            and isinstance(first.value, str)
            and first.value
        ):
            return first.value + "*"
    if isinstance(node, ast.Name):
        return const_strings.get(node.id)
    return None


def module_const_strings(module: ProjectModule) -> Dict[str, str]:
    """Top-level names bound to string constants (or ``StreamLabel("...")``)."""
    out: Dict[str, str] = {}
    for node in module.context.tree.body:
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        value = node.value
        if value is None:
            continue
        text: Optional[str] = None
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            text = value.value
        elif (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id == "StreamLabel"
            and value.args
            and isinstance(value.args[0], ast.Constant)
            and isinstance(value.args[0].value, str)
        ):
            text = value.args[0].value
        if text is None:
            continue
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if isinstance(target, ast.Name):
                out[target.id] = text
    return out


class FlowAnalysis:
    """The interprocedural flow analysis over one project.

    Build once per run with :meth:`build`; the :class:`FlowEvents` in
    :attr:`events` and the memoized summaries are then shared by every
    RL20x rule.
    """

    def __init__(self, graph: ImportGraph, callgraph: CallGraph) -> None:
        self.graph = graph
        self.callgraph = callgraph
        self.events = FlowEvents()
        #: (qualname, context) -> summary.
        self._summaries: Dict[Tuple[str, Tuple[Provenance, ...]], FunctionSummary] = {}
        self._context_counts: Dict[str, int] = {}
        self._in_progress: Set[Tuple[str, Tuple[Provenance, ...]]] = set()
        #: module name -> top-level string constants.
        self.const_strings: Dict[str, Dict[str, str]] = {}
        #: module name -> abstract values of module-level bindings.
        self.module_envs: Dict[str, Dict[str, AbstractValue]] = {}
        #: "module:Class" -> {"self.attr": value} from __init__.
        self._class_envs: Dict[str, Dict[str, AbstractValue]] = {}
        self._module_env_in_progress: Set[str] = set()

    # -- construction -------------------------------------------------

    @classmethod
    def build(cls, graph: ImportGraph, callgraph: CallGraph) -> "FlowAnalysis":
        analysis = cls(graph, callgraph)
        for name, module in graph.modules.items():
            analysis.const_strings[name] = module_const_strings(module)
        # Resolve one level of constant re-export (from repro.x import LABEL).
        for name, module in graph.modules.items():
            scope = callgraph.scopes[name]
            table = analysis.const_strings[name]
            for local, (source, original) in scope.from_imports.items():
                if local not in table:
                    value = analysis.const_strings.get(source, {}).get(original)
                    if value is not None:
                        table[local] = value
        # Module-level code first (module envs feed global reads), then
        # every function once in its generic context, recording events.
        for name in sorted(graph.modules):
            analysis.module_env(name)
        for qualname in sorted(callgraph.functions):
            analysis._generic_summary(qualname, record_events=True)
        return analysis

    # -- environments -------------------------------------------------

    def module_env(self, name: str) -> Dict[str, AbstractValue]:
        """Abstract values of ``name``'s module-level bindings."""
        cached = self.module_envs.get(name)
        if cached is not None:
            return cached
        if name in self._module_env_in_progress or name not in self.graph.modules:
            return {}
        self._module_env_in_progress.add(name)
        try:
            module = self.graph.modules[name]
            interpreter = _Interpreter(
                self,
                module,
                self.callgraph.scopes[name],
                qualname=None,
                record_events=True,
            )
            top_level = [
                node
                for node in module.context.tree.body
                if not isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                )
            ]
            interpreter.run(top_level)
            env = interpreter.env
        finally:
            self._module_env_in_progress.discard(name)
        self.module_envs[name] = env
        return env

    def class_env(self, module: str, class_name: str) -> Dict[str, AbstractValue]:
        """``self.attr`` values established by ``__init__`` (generic context)."""
        key = f"{module}:{class_name}"
        cached = self._class_envs.get(key)
        if cached is not None:
            return cached
        self._class_envs[key] = {}  # cycle guard
        init = self.callgraph.functions.get(f"{module}:{class_name}.__init__")
        if init is None:
            return self._class_envs[key]
        interpreter = self._interpret_function(
            init, self._generic_context(init), record_events=False
        )
        env = {
            name: value
            for name, value in interpreter.env.items()
            if name.startswith("self.")
        }
        self._class_envs[key] = env
        return env

    # -- summaries ----------------------------------------------------

    def _generic_context(self, info: FunctionInfo) -> Tuple[Provenance, ...]:
        """The context used when no call-site provenance is available:
        stream-like parameters get synthetic per-parameter labels."""
        context: List[Provenance] = []
        args = getattr(info.node, "args", None)
        all_args = (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            if args is not None
            else []
        )
        for arg in all_args:
            if arg.arg in STREAM_PARAM_NAMES or _is_stream_annotation(arg.annotation):
                context.append(stream(f"param:{info.qualname}:{arg.arg}"))
            else:
                context.append(BOTTOM)
        return tuple(context)

    def _generic_summary(self, qualname: str, record_events: bool) -> FunctionSummary:
        info = self.callgraph.functions[qualname]
        return self.summary(qualname, self._generic_context(info), record_events)

    def summary(
        self,
        qualname: str,
        context: Tuple[Provenance, ...],
        record_events: bool = False,
    ) -> FunctionSummary:
        """The (memoized) summary of ``qualname`` under ``context``."""
        info = self.callgraph.functions.get(qualname)
        if info is None:
            return NEUTRAL_SUMMARY
        params = _param_names(info.node)
        context = tuple(context[: len(params)]) + (BOTTOM,) * (
            len(params) - len(context)
        )
        key = (qualname, context)
        cached = self._summaries.get(key)
        if cached is not None and not record_events:
            return cached
        if key in self._in_progress:
            return NEUTRAL_SUMMARY
        if (
            cached is None
            and self._context_counts.get(qualname, 0) >= MAX_CONTEXTS
            and not record_events
        ):
            generic = (qualname, self._generic_context(info))
            fallback = self._summaries.get(generic)
            if fallback is not None:
                return fallback
        self._in_progress.add(key)
        try:
            interpreter = self._interpret_function(info, context, record_events)
            summary = interpreter.summarize()
        finally:
            self._in_progress.discard(key)
        if cached is None:
            self._context_counts[qualname] = self._context_counts.get(qualname, 0) + 1
        self._summaries[key] = summary
        return summary

    def _interpret_function(
        self,
        info: FunctionInfo,
        context: Tuple[Provenance, ...],
        record_events: bool,
    ) -> "_Interpreter":
        module = self.graph.modules[info.module]
        scope = self.callgraph.scopes[info.module]
        interpreter = _Interpreter(
            self,
            module,
            scope,
            qualname=info.qualname,
            class_name=info.class_name,
            record_events=record_events,
        )
        params = _param_names(info.node)
        for name, prov in zip(params, context):
            interpreter.env[name] = AbstractValue(prov, Orderedness.UNKNOWN)
            if prov.is_stream:
                interpreter.param_entry[name] = prov
        if info.class_name is not None and info.node.name != "__init__":
            for attr, value in self.class_env(info.module, info.class_name).items():
                interpreter.env.setdefault(attr, value)
        interpreter.func_node = info.node
        interpreter.known_sets = frozenset(
            setish_names(info.node, module.context.tree)
        )
        interpreter.run(info.node.body)
        return interpreter

    def record_creation(
        self, label: str, module: str, function: Optional[str], node: ast.AST
    ) -> None:
        sites = self.events.created_at.setdefault(label, [])
        site = CreationSite(
            module=module,
            function=function,
            lineno=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
        )
        if site not in sites:
            sites.append(site)


class _Interpreter:
    """One flow-sensitive pass over a statement list."""

    def __init__(
        self,
        analysis: FlowAnalysis,
        module: ProjectModule,
        scope: ModuleScope,
        qualname: Optional[str],
        class_name: Optional[str] = None,
        record_events: bool = False,
    ) -> None:
        self.analysis = analysis
        self.module = module
        self.scope = scope
        self.qualname = qualname
        self.class_name = class_name
        self.record = record_events
        self.env: Dict[str, AbstractValue] = {}
        #: Stream labels handed off to a consuming callee so far, with
        #: the line and callee of the first hand-off.
        self.handed: Dict[str, Tuple[int, Optional[str]]] = {}
        #: Entry provenance of stream parameters (for consumed_params).
        self.param_entry: Dict[str, Provenance] = {}
        self.consumed: Set[str] = set()
        self.consumes_top = False
        self.consumed_params: Set[str] = set()
        self.created: Set[str] = set()
        self.returns: AbstractValue = AbstractValue(BOTTOM, Orderedness.UNKNOWN)
        self.saw_return = False
        self.func_node: Optional[ast.AST] = None
        self.known_sets: FrozenSet[str] = frozenset()

    def summarize(self) -> FunctionSummary:
        return FunctionSummary(
            returns=self.returns if self.saw_return else UNKNOWN_VALUE,
            consumed=frozenset(self.consumed),
            consumes_top=self.consumes_top,
            consumed_params=frozenset(self.consumed_params),
            created=frozenset(self.created),
        )

    # -- statement dispatch -------------------------------------------

    def run(self, statements: Sequence[ast.stmt]) -> None:
        for statement in statements:
            self.execute(statement)

    def execute(self, node: ast.stmt) -> None:
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            self._exec_assign(node)
        elif isinstance(node, (ast.Return,)):
            if node.value is not None:
                self.returns = self.returns.join(self.eval(node.value))
                self.saw_return = True
        elif isinstance(node, ast.Expr):
            self.eval(node.value)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            self._exec_for(node)
        elif isinstance(node, ast.While):
            self.eval(node.test)
            self._join_branches([node.body, node.orelse])
        elif isinstance(node, ast.If):
            self.eval(node.test)
            self._join_branches([node.body, node.orelse])
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                value = self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind_target(item.optional_vars, value)
            self.run(node.body)
        elif isinstance(node, ast.Try):
            blocks: List[List[ast.stmt]] = [node.body]
            for handler in node.handlers:
                blocks.append(handler.body)
            if node.orelse:
                blocks.append(node.orelse)
            self._join_branches(blocks)
            self.run(node.finalbody)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            pass  # nested defs are analyzed via the call graph, not inline
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.env.pop(target.id, None)
        elif isinstance(node, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self.eval(child)

    def _join_branches(self, blocks: Sequence[Sequence[ast.stmt]]) -> None:
        """Interpret alternative blocks from the current env and join the
        resulting envs at the merge point (flow-sensitivity with joins)."""
        base_env = dict(self.env)
        base_handed = dict(self.handed)
        merged_env: Optional[Dict[str, AbstractValue]] = None
        merged_handed: Dict[str, Tuple[int, Optional[str]]] = dict(base_handed)
        for block in blocks:
            self.env = dict(base_env)
            self.handed = dict(base_handed)
            self.run(block)
            if merged_env is None:
                merged_env = dict(self.env)
            else:
                keys = set(merged_env) | set(self.env)
                merged_env = {
                    key: merged_env.get(key, UNKNOWN_VALUE).join(
                        self.env.get(key, UNKNOWN_VALUE)
                    )
                    if key in merged_env and key in self.env
                    else (merged_env.get(key) or self.env[key])
                    for key in keys
                }
            for label, site in self.handed.items():
                merged_handed.setdefault(label, site)
        self.env = merged_env if merged_env is not None else base_env
        self.handed = merged_handed

    def _exec_for(self, node: ast.For) -> None:
        iterable = self.eval(node.iter)
        element = AbstractValue(iterable.prov, Orderedness.UNKNOWN)
        self._bind_target(node.target, element)
        if self.record and iterable.order is Orderedness.UNORDERED:
            accumulator = self._loop_accumulator(node)
            if accumulator is not None:
                self.analysis.events.unordered_reduces.append(
                    UnorderedReduceRecord(
                        module=self.module.name,
                        function=self.qualname,
                        node=node.iter,
                        reducer="for-loop",
                        syntactic=is_setish_expr(node.iter, self.known_sets),
                        accumulator=accumulator,
                    )
                )
        self._join_branches([list(node.body) + list(node.orelse)])

    def _loop_accumulator(self, loop: ast.For) -> Optional[str]:
        """Name of an order-sensitive accumulator fed by the loop, if any."""
        loop_locals = {
            name.id for name in ast.walk(loop.target) if isinstance(name, ast.Name)
        }
        for statement in loop.body:
            for sub in ast.walk(statement):
                if isinstance(sub, ast.AugAssign) and isinstance(
                    sub.target, ast.Name
                ):
                    if sub.target.id not in loop_locals:
                        return sub.target.id
        return None

    def _exec_assign(self, node: ast.stmt) -> None:
        if isinstance(node, ast.Assign):
            value = self.eval(node.value)
            value = self._apply_stream_annotation(node, value)
            for target in node.targets:
                self._bind_target(target, value, rhs=node.value)
        elif isinstance(node, ast.AnnAssign):
            if node.value is None:
                return
            value = self.eval(node.value)
            value = self._apply_stream_annotation(node, value)
            self._bind_target(node.target, value, rhs=node.value)
        elif isinstance(node, ast.AugAssign):
            value = self.eval(node.value)
            if isinstance(node.target, ast.Name):
                old = self.env.get(node.target.id, UNKNOWN_VALUE)
                self.env[node.target.id] = old.join(value)
            elif (
                isinstance(node.target, ast.Attribute)
                and isinstance(node.target.value, ast.Name)
            ):
                key = f"{node.target.value.id}.{node.target.attr}"
                old = self.env.get(key, UNKNOWN_VALUE)
                self.env[key] = old.join(value)

    def _apply_stream_annotation(
        self, node: ast.stmt, value: AbstractValue
    ) -> AbstractValue:
        """Honour ``# reprolint: stream=<label>`` on the assignment line."""
        lineno = getattr(node, "lineno", 0)
        lines = self.module.context.lines
        if 0 < lineno <= len(lines):
            match = _STREAM_ANNOTATION_RE.search(lines[lineno - 1])
            if match:
                label = match.group(1)
                self.created.add(label)
                self.analysis.record_creation(
                    label, self.module.name, self.qualname, node
                )
                return AbstractValue(stream(label), value.order)
        return value

    def _bind_target(
        self,
        target: ast.expr,
        value: AbstractValue,
        rhs: Optional[ast.expr] = None,
    ) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = value
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, value, rhs)
        elif isinstance(target, (ast.Tuple, ast.List)):
            # Element-wise when the right side is a matching literal.
            if (
                rhs is not None
                and isinstance(rhs, (ast.Tuple, ast.List))
                and len(rhs.elts) == len(target.elts)
            ):
                for element, expr in zip(target.elts, rhs.elts):
                    self._bind_target(element, self.eval(expr))
            else:
                element = AbstractValue(value.prov, Orderedness.UNKNOWN)
                for element_target in target.elts:
                    self._bind_target(element_target, element)
        elif isinstance(target, ast.Attribute) and isinstance(target.value, ast.Name):
            key = f"{target.value.id}.{target.attr}"
            self.env[key] = value
            # Storing a stream on an object hands the stream over.
            if value.prov.is_stream:
                self._note_param_consumption(value.prov)
        elif isinstance(target, ast.Subscript) and isinstance(target.value, ast.Name):
            old = self.env.get(target.value.id, UNKNOWN_VALUE)
            self.env[target.value.id] = AbstractValue(
                old.prov.join(value.prov), old.order
            )

    def _note_param_consumption(self, prov: Provenance) -> None:
        for name, entry in self.param_entry.items():
            if entry == prov:
                self.consumed_params.add(name)

    # -- expression evaluation ----------------------------------------

    def eval(self, node: ast.expr) -> AbstractValue:
        if isinstance(node, ast.Constant):
            return ORDERED_VALUE
        if isinstance(node, ast.Name):
            return self._eval_name(node.id)
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, (ast.Tuple, ast.List)):
            prov = join_all(self.eval(element).prov for element in node.elts)
            return AbstractValue(prov, Orderedness.ORDERED)
        if isinstance(node, (ast.Set,)):
            prov = join_all(self.eval(element).prov for element in node.elts)
            return AbstractValue(prov, Orderedness.UNORDERED)
        if isinstance(node, ast.Dict):
            prov = join_all(
                self.eval(value).prov for value in node.values if value is not None
            )
            return AbstractValue(prov, Orderedness.ORDERED)
        if isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.SetComp)):
            return self._eval_comprehension(node)
        if isinstance(node, ast.DictComp):
            order = self._bind_comprehension_generators(node.generators)
            self.eval(node.key)
            prov = self.eval(node.value).prov
            if isinstance(node, ast.DictComp):
                order = Orderedness.ORDERED if order is Orderedness.ORDERED else order
            return AbstractValue(prov, order)
        if isinstance(node, ast.BoolOp):
            # ``rng or fallback`` selects one of the operand values.
            return AbstractValue(
                join_all(self.eval(value).prov for value in node.values),
                Orderedness.UNKNOWN,
            )
        if isinstance(node, ast.IfExp):
            self.eval(node.test)
            return self.eval(node.body).join(self.eval(node.orelse))
        if isinstance(node, ast.BinOp):
            left, right = self.eval(node.left), self.eval(node.right)
            # Set algebra (| & - ^) preserves unorderedness; arithmetic
            # results are scalars and carry no provenance.
            return AbstractValue(BOTTOM, left.order.join(right.order))
        if isinstance(node, (ast.Compare, ast.UnaryOp, ast.Lambda, ast.JoinedStr)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr) and not isinstance(node, ast.Lambda):
                    self.eval(child)
            return ORDERED_VALUE
        if isinstance(node, ast.Subscript):
            base = self.eval(node.value)
            # The index runs too: options[rng.randrange(n)] is a draw.
            self.eval(node.slice)
            return AbstractValue(base.prov, Orderedness.UNKNOWN)
        if isinstance(node, ast.Slice):
            for part in (node.lower, node.upper, node.step):
                if part is not None:
                    self.eval(part)
            return ORDERED_VALUE
        if isinstance(node, ast.FormattedValue):
            self.eval(node.value)
            return ORDERED_VALUE
        if isinstance(node, ast.Starred):
            return self.eval(node.value)
        if isinstance(node, (ast.Await, ast.YieldFrom)):
            return self.eval(node.value) if node.value is not None else UNKNOWN_VALUE
        if isinstance(node, ast.Yield):
            if node.value is not None:
                self.returns = self.returns.join(self.eval(node.value))
                self.saw_return = True
            return UNKNOWN_VALUE
        return UNKNOWN_VALUE

    def _eval_name(self, name: str) -> AbstractValue:
        if name in self.env:
            return self.env[name]
        module_env = self.analysis.module_envs.get(self.module.name)
        if module_env is None and self.qualname is not None:
            module_env = self.analysis.module_env(self.module.name)
        if module_env and name in module_env:
            return module_env[name]
        imported = self.scope.from_imports.get(name)
        if imported is not None:
            source_env = self.analysis.module_envs.get(imported[0])
            if source_env and imported[1] in source_env:
                return source_env[imported[1]]
        return UNKNOWN_VALUE

    def _eval_attribute(self, node: ast.Attribute) -> AbstractValue:
        if isinstance(node.value, ast.Name):
            key = f"{node.value.id}.{node.attr}"
            if key in self.env:
                return self.env[key]
            base = self._eval_name(node.value.id)
            # An object tagged with a stream "contains" it; reading any
            # attribute conservatively keeps the tag.
            return AbstractValue(base.prov, Orderedness.UNKNOWN)
        base = self.eval(node.value)
        return AbstractValue(base.prov, Orderedness.UNKNOWN)

    def _eval_comprehension(self, node: ast.expr) -> AbstractValue:
        order = self._bind_comprehension_generators(node.generators)
        element = self.eval(node.elt)
        if isinstance(node, ast.SetComp):
            order = Orderedness.UNORDERED
        return AbstractValue(element.prov, order)

    def _bind_comprehension_generators(
        self, generators: Sequence[ast.comprehension]
    ) -> Orderedness:
        order = Orderedness.ORDERED
        for generator in generators:
            iterable = self.eval(generator.iter)
            order = order.join(iterable.order)
            self._bind_target(
                generator.target,
                AbstractValue(iterable.prov, Orderedness.UNKNOWN),
            )
            for condition in generator.ifs:
                self.eval(condition)
        return order

    # -- calls --------------------------------------------------------

    def _eval_call(self, node: ast.Call) -> AbstractValue:
        func = node.func
        arg_values = [self.eval(arg) for arg in node.args]
        kwarg_values = {
            kw.arg: self.eval(kw.value) for kw in node.keywords if kw.arg is not None
        }
        for kw in node.keywords:
            if kw.arg is None:  # **kwargs
                self.eval(kw.value)

        origin = self._origin_value(node, func, arg_values)
        if origin is not None:
            return origin

        if isinstance(func, ast.Attribute):
            result = self._eval_attr_call(node, func, arg_values, kwarg_values)
            if result is not None:
                return result
        if isinstance(func, ast.Name):
            result = self._eval_builtin_call(node, func.id, arg_values)
            if result is not None:
                return result

        return self._eval_resolved_call(node, func, arg_values, kwarg_values)

    def _origin_value(
        self, node: ast.Call, func: ast.expr, arg_values: List[AbstractValue]
    ) -> Optional[AbstractValue]:
        """Stream origin sites: stream()/spawn(), Random(), RngRegistry()."""
        if isinstance(func, ast.Attribute) and func.attr in ("stream", "spawn"):
            receiver = self.eval(func.value)
            name_arg: Optional[ast.expr] = node.args[0] if node.args else None
            if name_arg is None:
                for kw in node.keywords:
                    if kw.arg == "name":
                        name_arg = kw.value
            if receiver.prov.is_stream or self._looks_like_registry(func.value):
                label = (
                    _literal_label(
                        name_arg, self.analysis.const_strings.get(self.module.name, {})
                    )
                    if name_arg is not None
                    else None
                )
                if label is None:
                    label = f"{self.module.name}:<dynamic>"
                self.created.add(label)
                self.analysis.record_creation(
                    label, self.module.name, self.qualname, node
                )
                return AbstractValue(stream(label), Orderedness.UNKNOWN)
            return None
        ctor = _random_ctor_kind(func)
        if ctor == "Random":
            if not node.args and not node.keywords:
                return AbstractValue(TOP_UNSEEDED, Orderedness.UNKNOWN)
            label = f"Random@{self.module.name}:{getattr(node, 'lineno', 0)}"
            self.created.add(label)
            self.analysis.record_creation(label, self.module.name, self.qualname, node)
            return AbstractValue(stream(label), Orderedness.UNKNOWN)
        if ctor == "RngRegistry":
            # Unseeded registries are sanctioned (only the root seed is
            # entropy; draws replay from it), so both forms get a label.
            label = f"registry@{self.module.name}:{getattr(node, 'lineno', 0)}"
            self.created.add(label)
            self.analysis.record_creation(label, self.module.name, self.qualname, node)
            return AbstractValue(stream(label), Orderedness.UNKNOWN)
        return None

    def _looks_like_registry(self, receiver: ast.expr) -> bool:
        """``x.rng.stream(...)`` / ``registry.stream(...)``: receivers that
        are conventionally registries even when untagged."""
        if isinstance(receiver, ast.Attribute):
            return receiver.attr in ("rng", "registry")
        if isinstance(receiver, ast.Name):
            return receiver.id in ("rng", "registry", "reg")
        return False

    def _eval_attr_call(
        self,
        node: ast.Call,
        func: ast.Attribute,
        arg_values: List[AbstractValue],
        kwarg_values: Dict[str, AbstractValue],
    ) -> Optional[AbstractValue]:
        receiver = self.eval(func.value)
        if func.attr in DRAW_METHODS and receiver.prov.is_stream:
            self._record_draw(node, receiver.prov, func.attr)
            return ORDERED_VALUE
        if func.attr in _SET_RETURNING_ATTRS:
            return AbstractValue(
                receiver.prov.join(join_all(v.prov for v in arg_values)),
                Orderedness.UNORDERED,
            )
        if func.attr in _ORDERED_ATTR_CALLS and not arg_values:
            order = (
                Orderedness.UNORDERED
                if receiver.order is Orderedness.UNORDERED
                else Orderedness.ORDERED
            )
            return AbstractValue(receiver.prov, order)
        if func.attr in MUTATOR_METHODS and isinstance(func.value, ast.Name):
            # pool.append(rng): the container now carries the stream.
            added = join_all(v.prov for v in arg_values)
            if added.is_stream:
                old = self.env.get(func.value.id, UNKNOWN_VALUE)
                self.env[func.value.id] = AbstractValue(
                    old.prov.join(added), old.order
                )
            return ORDERED_VALUE
        return None

    def _eval_builtin_call(
        self, node: ast.Call, name: str, arg_values: List[AbstractValue]
    ) -> Optional[AbstractValue]:
        first = arg_values[0] if arg_values else UNKNOWN_VALUE
        if name in _ORDERING_CALLS:
            return AbstractValue(first.prov, Orderedness.ORDERED)
        if name in _UNORDERING_CALLS:
            return AbstractValue(first.prov, Orderedness.UNORDERED)
        if name in _PRESERVING_CALLS:
            return AbstractValue(
                join_all(v.prov for v in arg_values),
                first.order if arg_values else Orderedness.ORDERED,
            )
        if name == "as_completed":
            return AbstractValue(first.prov, Orderedness.UNORDERED)
        if name in REDUCER_NAMES:
            self._record_reduce(node, name, arg_values)
            return ORDERED_VALUE
        if name == "partial" and arg_values:
            # The partial object carries every bound stream.
            return AbstractValue(
                join_all(v.prov for v in arg_values[1:]), Orderedness.UNKNOWN
            )
        if name in ("min", "max", "len", "any", "all", "abs", "round", "repr", "str"):
            return ORDERED_VALUE
        return None

    def _record_reduce(
        self, node: ast.Call, name: str, arg_values: List[AbstractValue]
    ) -> None:
        if not self.record or not node.args:
            return
        # reduce(f, iterable) takes the iterable second.
        index = 1 if name == "reduce" and len(node.args) > 1 else 0
        if index >= len(arg_values):
            return
        if arg_values[index].order is not Orderedness.UNORDERED:
            return
        candidate = node.args[index]
        syntactic = is_setish_expr(candidate, self.known_sets) or (
            isinstance(candidate, (ast.GeneratorExp, ast.ListComp))
            and any(
                is_setish_expr(gen.iter, self.known_sets)
                for gen in candidate.generators
            )
        )
        self.analysis.events.unordered_reduces.append(
            UnorderedReduceRecord(
                module=self.module.name,
                function=self.qualname,
                node=candidate,
                reducer=name,
                syntactic=syntactic,
            )
        )

    def _record_draw(self, node: ast.AST, prov: Provenance, method: str) -> None:
        if prov.top:
            self.consumes_top = True
        elif prov.label is not None:
            self.consumed.add(prov.label)
        self._note_param_consumption(prov)
        if self.record:
            self.analysis.events.draws.append(
                DrawRecord(
                    module=self.module.name,
                    function=self.qualname,
                    node=node,
                    value=prov,
                    method=method,
                )
            )
            if prov.label is not None and prov.label in self.handed:
                lineno, callee = self.handed[prov.label]
                self.analysis.events.reuses.append(
                    ReuseRecord(
                        module=self.module.name,
                        function=self.qualname,
                        node=node,
                        label=prov.label,
                        handoff_lineno=lineno,
                        callee=callee,
                    )
                )

    def _resolve_callee(self, func: ast.expr) -> Optional[str]:
        """Resolve a call target to a function qualname, including class
        constructors (``Node(...)`` -> ``module:Node.__init__``)."""
        resolved = resolve_reference(
            func,
            self.module,
            self.scope,
            self.analysis.graph,
            self.analysis.callgraph.scopes,
            class_name=self.class_name,
        )
        if resolved is not None:
            return resolved
        if isinstance(func, ast.Name):
            name = func.id
            if name in self.scope.classes:
                candidate = f"{self.module.name}:{name}.__init__"
                if candidate in self.analysis.callgraph.functions:
                    return candidate
            imported = self.scope.from_imports.get(name)
            if imported is not None:
                source, original = imported
                source_scope = self.analysis.callgraph.scopes.get(source)
                if source_scope and original in source_scope.classes:
                    candidate = f"{source}:{original}.__init__"
                    if candidate in self.analysis.callgraph.functions:
                        return candidate
        return None

    def _eval_resolved_call(
        self,
        node: ast.Call,
        func: ast.expr,
        arg_values: List[AbstractValue],
        kwarg_values: Dict[str, AbstractValue],
    ) -> AbstractValue:
        callee = self._resolve_callee(func)
        stream_args: List[Tuple[int, Optional[str], AbstractValue]] = [
            (index, None, value)
            for index, value in enumerate(arg_values)
            if value.prov.is_stream
        ] + [
            (-1, name, value)
            for name, value in kwarg_values.items()
            if value.prov.is_stream
        ]
        if self.record and stream_args:
            for index, name, value in stream_args:
                self.analysis.events.call_stream_args.append(
                    CallStreamArg(
                        module=self.module.name,
                        function=self.qualname,
                        node=node,
                        callee=callee,
                        arg_index=index,
                        arg_name=name,
                        value=value.prov,
                    )
                )
        if callee is None:
            if callee is None and not isinstance(func, (ast.Name, ast.Attribute)):
                return UNKNOWN_VALUE
            # Unknown callee: under-approximate -- assume it neither
            # consumes nor returns streams (no invented findings).
            return UNKNOWN_VALUE

        info = self.analysis.callgraph.functions[callee]
        params = _param_names(info.node)
        is_method_call = info.class_name is not None and (
            not isinstance(func, ast.Name) or func.id not in self.scope.classes
        )
        offset = 0
        if info.class_name is not None and params and params[0] == "self":
            offset = 1  # self is implicit at the call site
        context: List[Provenance] = [BOTTOM] * len(params)
        for index, value in enumerate(arg_values):
            slot = index + offset
            if slot < len(params):
                context[slot] = value.prov
        for name, value in kwarg_values.items():
            if name in params:
                context[params.index(name)] = value.prov
        summary = self.analysis.summary(callee, tuple(context))

        # Which of *my* streams did the callee take over?
        for index, name, value in stream_args:
            param_name: Optional[str] = None
            if name is not None and name in summary.consumed_params:
                param_name = name
            elif index >= 0:
                slot = index + offset
                if slot < len(params) and params[slot] in summary.consumed_params:
                    param_name = params[slot]
            if param_name is not None:
                label = value.prov.label
                if label is not None and label not in self.handed:
                    self.handed[label] = (getattr(node, "lineno", 0), callee)
                self._note_param_consumption(value.prov)
        for label in summary.consumed:
            if not label.startswith("param:"):
                self.consumed.add(label)
        if summary.consumes_top:
            self.consumes_top = True

        if callee.endswith(".__init__"):
            # The instance carries every stream the constructor retained.
            retained = join_all(
                value.prov
                for index, name, value in stream_args
            )
            return AbstractValue(retained, Orderedness.UNKNOWN)
        return summary.returns


def _random_ctor_kind(func: ast.expr) -> Optional[str]:
    """``"Random"`` / ``"RngRegistry"`` when ``func`` is one of those ctors."""
    if isinstance(func, ast.Attribute):
        if func.attr == "Random" and isinstance(func.value, ast.Name):
            if func.value.id == "random":
                return "Random"
        if func.attr == "RngRegistry":
            return "RngRegistry"
        return None
    if isinstance(func, ast.Name):
        if func.id == "Random":
            return "Random"
        if func.id == "RngRegistry":
            return "RngRegistry"
    return None
