"""reprolint: determinism & correctness static analysis for this repo.

Two complementary halves:

* a static AST pass (:mod:`repro.lint.rules`, driven by
  :class:`~repro.lint.engine.LintEngine`) that rejects the known
  *sources* of nondeterminism -- global-RNG draws, wall-clock reads in
  simulation code, dynamic RNG stream names -- plus classic correctness
  traps (mutable defaults, float ``==`` on probabilities, swallowed
  exceptions on hot paths);
* a whole-program pass (``repro-lint --project``; :mod:`repro.lint.graph`,
  :mod:`repro.lint.callgraph`, :mod:`repro.lint.project_rules`) that sees
  *between* modules: layering violations and import cycles, unpicklable
  pool workers, shared mutable state reachable from workers, unordered
  set iteration feeding reductions, RNG-stream provenance leaks, and
  ``__init__`` export drift (RL101-RL106);
* a flow-sensitive abstract interpretation (``repro-lint --flows``;
  :mod:`repro.lint.provenance`, :mod:`repro.lint.absint`,
  :mod:`repro.lint.flow_rules`) that tags every value with its RNG
  stream provenance and iteration orderedness, propagates the tags
  interprocedurally through the call graph, and enforces the
  replicate-isolation invariants (RL201-RL205);
* a tensor abstract interpretation (``repro-lint --tensors``;
  :mod:`repro.lint.arrays`, :mod:`repro.lint.tensor_absint`,
  :mod:`repro.lint.tensor_rules`) that tags every value with symbolic
  shape, dtype, aliasing regions and orderedness, and enforces the
  columnar tier's shape/dtype/aliasing/determinism invariants
  (RL301-RL305);
* a runtime sanitizer (:mod:`repro.lint.sanitizer`) that replays a
  simulation from the same seed and pinpoints the first diverging trace
  event when the static rules missed something -- with runners for the
  DCA, grid, and MapReduce substrates.

Run the linter with ``python -m repro.lint [paths]`` or the
``repro-lint`` console script; see ``docs/linting.md``.
"""

from repro.lint.absint import FlowAnalysis
from repro.lint.arrays import ArrayValue, Dim, DType, tensor_tables_digest
from repro.lint.baseline import apply_baseline, load_baseline, write_baseline
from repro.lint.cache import LintCache, ruleset_signature
from repro.lint.config import LintConfig, load_config
from repro.lint.engine import LintEngine, ModuleContext, Rule, register, registered_rules
from repro.lint.findings import Finding, Severity
from repro.lint.fixes import fix_source
from repro.lint.flow_rules import FlowRule, register_flow, registered_flow_rules
from repro.lint.graph import ImportGraph, find_package_root, load_project
from repro.lint.project import ProjectReport, lint_project
from repro.lint.project_rules import (
    ALLOWED_IMPORTS,
    ProjectContext,
    ProjectRule,
    register_project,
    registered_project_rules,
)
from repro.lint.provenance import (
    BOTTOM,
    TOP,
    TOP_UNSEEDED,
    AbstractValue,
    FunctionSummary,
    Orderedness,
    Provenance,
)
from repro.lint.sanitizer import (
    DeterminismError,
    DeterminismSanitizer,
    Divergence,
    SanitizerReport,
    dca_runner,
    diff_captures,
    grid_runner,
    mapreduce_runner,
    sanitize_dca,
    sanitize_grid,
    sanitize_mapreduce,
    trace_fingerprint,
)
from repro.lint.sarif import render_sarif, sarif_log
from repro.lint.tensor_absint import TensorAnalysis
from repro.lint.tensor_rules import (
    TensorRule,
    register_tensor,
    registered_tensor_rules,
)

__all__ = [
    "ALLOWED_IMPORTS",
    "BOTTOM",
    "AbstractValue",
    "ArrayValue",
    "DType",
    "DeterminismError",
    "DeterminismSanitizer",
    "Dim",
    "Divergence",
    "Finding",
    "FlowAnalysis",
    "FlowRule",
    "FunctionSummary",
    "ImportGraph",
    "LintCache",
    "LintConfig",
    "LintEngine",
    "ModuleContext",
    "Orderedness",
    "ProjectContext",
    "ProjectReport",
    "ProjectRule",
    "Provenance",
    "Rule",
    "SanitizerReport",
    "Severity",
    "TOP",
    "TOP_UNSEEDED",
    "TensorAnalysis",
    "TensorRule",
    "apply_baseline",
    "dca_runner",
    "diff_captures",
    "find_package_root",
    "fix_source",
    "grid_runner",
    "lint_project",
    "load_baseline",
    "load_config",
    "load_project",
    "mapreduce_runner",
    "register",
    "register_flow",
    "register_project",
    "register_tensor",
    "registered_flow_rules",
    "registered_project_rules",
    "registered_rules",
    "registered_tensor_rules",
    "render_sarif",
    "ruleset_signature",
    "sanitize_dca",
    "sanitize_grid",
    "sanitize_mapreduce",
    "sarif_log",
    "tensor_tables_digest",
    "trace_fingerprint",
    "write_baseline",
]
