"""reprolint: determinism & correctness static analysis for this repo.

Two complementary halves:

* a static AST pass (:mod:`repro.lint.rules`, driven by
  :class:`~repro.lint.engine.LintEngine`) that rejects the known
  *sources* of nondeterminism -- global-RNG draws, wall-clock reads in
  simulation code, dynamic RNG stream names -- plus classic correctness
  traps (mutable defaults, float ``==`` on probabilities, swallowed
  exceptions on hot paths);
* a runtime sanitizer (:mod:`repro.lint.sanitizer`) that replays a
  simulation from the same seed and pinpoints the first diverging trace
  event when the static rules missed something.

Run the linter with ``python -m repro.lint [paths]`` or the
``repro-lint`` console script; see ``docs/linting.md``.
"""

from repro.lint.config import LintConfig, load_config
from repro.lint.engine import LintEngine, ModuleContext, Rule, register, registered_rules
from repro.lint.findings import Finding, Severity
from repro.lint.sanitizer import (
    DeterminismError,
    DeterminismSanitizer,
    Divergence,
    SanitizerReport,
    dca_runner,
    diff_captures,
    sanitize_dca,
    trace_fingerprint,
)

__all__ = [
    "DeterminismError",
    "DeterminismSanitizer",
    "Divergence",
    "Finding",
    "LintConfig",
    "LintEngine",
    "ModuleContext",
    "Rule",
    "SanitizerReport",
    "Severity",
    "dca_runner",
    "diff_captures",
    "load_config",
    "register",
    "registered_rules",
    "sanitize_dca",
    "trace_fingerprint",
]
