"""The array abstract domain used by the tensor analysis (``--tensors``).

Scalar determinism has :mod:`repro.lint.provenance`; array code has its
own failure modes -- silent dtype drift, broadcasting surprises, aliased
in-place mutation, unstable sorts -- so every abstract value the
interpreter in :mod:`repro.lint.tensor_absint` tracks is an
:class:`ArrayValue` carrying four independent facts:

* **shape** -- a tuple of :class:`Dim` (symbolic name like ``tasks`` /
  ``jobs``, a literal size, or unknown), or ``None`` when the rank
  itself is unknown.  Two dims are *provably incompatible* only when
  both are known and definitely different (two unequal literals, or two
  distinct symbolic names) and neither is the broadcasting size 1 --
  the under-approximation contract of every reprolint tier: unknown
  never fires a rule.

* **dtype** -- the chain lattice ``bool < int < float`` refined by bit
  width (``bool < int8 < ... < int64 < float32 < float64``) with an
  unknown/widened ⊤ on top.  Join is "widest wins"; ⊤ is absorbing.
  :func:`narrows` is the drift predicate RL302 is built on.

* **regions** -- aliasing tags: every allocation site mints a fresh
  region id; views (basic slices, ``reshape``, ``ravel``, ``.T``)
  share their base's regions, copies (``.copy()``, fancy/boolean
  indexing, arithmetic results, ``astype``) get fresh ones.  RL303
  fires when a region reaches a fingerprint/envelope/telemetry sink and
  is then mutated in place through a *different* alias.

* **orderedness** -- reused verbatim from the RL104/RL204 machinery
  (:class:`~repro.lint.provenance.Orderedness`): an array built from a
  set or completion-ordered iterable keeps the UNORDERED tag, and RL304
  flags order-sensitive array ops fed by it.

The numpy intrinsic tables at the bottom (creators, sorts, reductions,
draw methods) are part of the analysis semantics: editing them changes
findings, so :func:`tensor_tables_digest` folds their *contents* into
the incremental-cache ruleset signature -- a table edit busts warm
caches while a comment-only edit of this file does not.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional, Tuple

from repro.lint.provenance import Orderedness


# ---------------------------------------------------------------------------
# Dimensions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Dim:
    """One axis of a symbolic shape.

    ``name`` is a symbolic length (the variable the size came from,
    e.g. ``tasks``); ``size`` is a literal length.  Both ``None`` means
    the axis length is unknown.  A dim never carries both: a literal
    size is strictly more precise than a name.
    """

    name: Optional[str] = None
    size: Optional[int] = None

    def __post_init__(self) -> None:
        if self.name is not None and self.size is not None:
            raise ValueError("a dim is symbolic or literal, not both")

    @property
    def known(self) -> bool:
        return self.name is not None or self.size is not None

    def join(self, other: "Dim") -> "Dim":
        """Least upper bound: agreement survives, disagreement widens."""
        return self if self == other else UNKNOWN_DIM

    def __str__(self) -> str:  # pragma: no cover - debug aid
        if self.size is not None:
            return str(self.size)
        if self.name is not None:
            return self.name
        return "?"


#: The unknown axis length (⊤ of the per-axis lattice).
UNKNOWN_DIM = Dim()
#: The broadcasting axis.
ONE_DIM = Dim(size=1)


def dims_incompatible(left: Dim, right: Dim) -> bool:
    """True only when ``left`` and ``right`` *provably* cannot broadcast.

    Both must be known, definitely different (unequal literals, or two
    distinct symbolic names), and neither may be the literal 1.  A
    literal against a symbol is never provable (the symbol could hold
    that very size), so it stays silent -- no invented findings.
    """
    if not left.known or not right.known:
        return False
    if left == ONE_DIM or right == ONE_DIM:
        return False
    if left.size is not None and right.size is not None:
        return left.size != right.size
    if left.name is not None and right.name is not None:
        return left.name != right.name
    return False  # literal vs symbol: not provable


# ---------------------------------------------------------------------------
# Dtypes
# ---------------------------------------------------------------------------


class DType(enum.IntEnum):
    """The dtype chain lattice ``bool < int < float`` with a ⊤.

    Join is ``max`` (widest wins), matching numpy's promotion direction
    along the chain; ``TOP`` is the unknown/widened absorber -- a value
    whose dtype the analysis lost track of never triggers RL302.
    """

    BOOL = 0
    INT8 = 1
    INT16 = 2
    INT32 = 3
    INT64 = 4
    FLOAT32 = 5
    FLOAT64 = 6
    TOP = 7

    def join(self, other: "DType") -> "DType":
        return max(self, other)

    def leq(self, other: "DType") -> bool:
        return self <= other

    @property
    def known(self) -> bool:
        return self is not DType.TOP

    @property
    def is_float(self) -> bool:
        return self in (DType.FLOAT32, DType.FLOAT64)

    @property
    def is_int(self) -> bool:
        return DType.INT8 <= self <= DType.INT64

    @property
    def is_bool(self) -> bool:
        return self is DType.BOOL


def narrows(src: DType, dst: DType) -> bool:
    """True when casting ``src`` to ``dst`` provably loses information:
    float -> int/bool, float64 -> float32, int64 -> int32/16/8, and
    int -> bool.  Unknown on either side never narrows (no invented
    findings); the ``int -> bool`` mask idiom is exempted by RL302
    itself, not here -- the lattice states the fact, the rule applies
    the judgement."""
    if not src.known or not dst.known:
        return False
    return dst < src


#: Spellings of numpy dtype designators -> lattice point.  Attribute
#: forms (``np.float32``), string forms (``"float32"``), and the
#: builtin ctor names (``bool``, ``int``, ``float``) all normalize here.
DTYPE_NAMES: Dict[str, DType] = {
    "bool": DType.BOOL,
    "bool_": DType.BOOL,
    "int8": DType.INT8,
    "int16": DType.INT16,
    "int32": DType.INT32,
    "int64": DType.INT64,
    "int": DType.INT64,
    "intp": DType.INT64,
    "float32": DType.FLOAT32,
    "float64": DType.FLOAT64,
    "float": DType.FLOAT64,
    "double": DType.FLOAT64,
}


# ---------------------------------------------------------------------------
# The product domain
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ArrayValue:
    """What the tensor interpreter knows about one value.

    ``is_array`` is definite: rules only fire on values the analysis
    *proved* to be arrays, so a joined or unknown value degrades to the
    scalar form (``is_array=False``) and stays silent.  Scalars still
    carry a dtype (``tally[i] += 1.5`` needs the 1.5 to be a known
    float) and an orderedness (a set is not an array but iterating it
    is UNORDERED).
    """

    is_array: bool = False
    shape: Optional[Tuple[Dim, ...]] = None
    dtype: DType = DType.TOP
    regions: FrozenSet[int] = frozenset()
    order: Orderedness = Orderedness.UNKNOWN

    def join(self, other: "ArrayValue") -> "ArrayValue":
        if self == other:
            return self
        is_array = self.is_array and other.is_array
        shape: Optional[Tuple[Dim, ...]] = None
        if (
            is_array
            and self.shape is not None
            and other.shape is not None
            and len(self.shape) == len(other.shape)
        ):
            shape = tuple(a.join(b) for a, b in zip(self.shape, other.shape))
        return ArrayValue(
            is_array=is_array,
            shape=shape,
            dtype=self.dtype.join(other.dtype),
            regions=self.regions | other.regions,
            order=self.order.join(other.order),
        )

    @property
    def first_dim(self) -> Dim:
        if self.shape:
            return self.shape[0]
        return UNKNOWN_DIM

    @property
    def last_dim(self) -> Dim:
        if self.shape:
            return self.shape[-1]
        return UNKNOWN_DIM


#: The neutral element: not provably an array, nothing known.
UNKNOWN_ARRAY = ArrayValue()
#: Plain non-array data with deterministic iteration order.
ORDERED_SCALAR = ArrayValue(order=Orderedness.ORDERED)


def scalar(dtype: DType) -> ArrayValue:
    """A non-array value of known dtype (constants, scalar reductions)."""
    return ArrayValue(dtype=dtype, order=Orderedness.ORDERED)


def join_all(values: Iterable[ArrayValue]) -> ArrayValue:
    out: Optional[ArrayValue] = None
    for value in values:
        out = value if out is None else out.join(value)
    return out if out is not None else UNKNOWN_ARRAY


def broadcast_dims(left: Dim, right: Dim) -> Dim:
    """The broadcast result of two (compatible) axis lengths."""
    if left == ONE_DIM:
        return right
    if right == ONE_DIM:
        return left
    if left == right:
        return left
    return UNKNOWN_DIM


# ---------------------------------------------------------------------------
# Numpy intrinsic tables (semantics the interpreter dispatches on)
# ---------------------------------------------------------------------------

#: Module-level creators returning a fresh array whose first positional
#: argument is the shape; value = default dtype without a ``dtype=``.
NP_SHAPE_CREATORS: Dict[str, DType] = {
    "zeros": DType.FLOAT64,
    "ones": DType.FLOAT64,
    "empty": DType.FLOAT64,
    "full": DType.FLOAT64,  # refined from the fill value when literal
}

#: Creators wrapping an existing sequence (shape/order taken from it).
NP_WRAP_CREATORS: FrozenSet[str] = frozenset(
    {"asarray", "array", "ascontiguousarray", "fromiter"}
)

#: ``np.arange(...)`` / ``np.linspace(...)``: 1-d fresh arrays.
NP_RANGE_CREATORS: Dict[str, DType] = {
    "arange": DType.INT64,  # refined to float64 when any arg is a float
    "linspace": DType.FLOAT64,
}

#: ufunc reductions (``np.sum(x)`` and friends): array -> scalar (or
#: smaller array); order-sensitive for float operands.
NP_REDUCTIONS: FrozenSet[str] = frozenset(
    {"sum", "prod", "mean", "std", "var", "dot", "nansum", "nanmean"}
)

#: Order-*insensitive* reductions: min/max/any/all commute exactly.
NP_SAFE_REDUCTIONS: FrozenSet[str] = frozenset(
    {"min", "max", "amin", "amax", "any", "all", "count_nonzero", "argmin", "argmax"}
)

#: Sorting entry points whose default kind is unstable (introsort).
NP_SORT_FUNCS: FrozenSet[str] = frozenset({"sort", "argsort", "lexsort"})

#: ``kind=`` spellings that guarantee a stable order.
STABLE_SORT_KINDS: FrozenSet[str] = frozenset({"stable", "mergesort"})

#: Elementwise/shape-preserving module functions: result shape/order
#: follow the (first) array operand, dtype follows promotion.
NP_ELEMENTWISE: FrozenSet[str] = frozenset(
    {
        "abs",
        "maximum",
        "minimum",
        "where",
        "clip",
        "sqrt",
        "exp",
        "log",
        "floor",
        "ceil",
        "logical_and",
        "logical_or",
        "logical_not",
    }
)

#: Generator draw methods -> result dtype (``np.random.default_rng()``).
NP_RNG_DRAWS: Dict[str, DType] = {
    "random": DType.FLOAT64,
    "uniform": DType.FLOAT64,
    "normal": DType.FLOAT64,
    "beta": DType.FLOAT64,
    "exponential": DType.FLOAT64,
    "integers": DType.INT64,
    "choice": DType.TOP,
    "permutation": DType.TOP,
}

#: Array methods returning a *view* (shared regions).
NP_VIEW_METHODS: FrozenSet[str] = frozenset(
    {"reshape", "ravel", "view", "transpose", "swapaxes", "squeeze"}
)

#: Array methods returning a fresh copy.
NP_COPY_METHODS: FrozenSet[str] = frozenset({"copy", "flatten", "astype", "tolist"})

#: ``ufunc.reduceat``/``ufunc.reduce`` attribute chains the engine uses.
NP_UFUNC_HOSTS: FrozenSet[str] = frozenset({"add", "maximum", "minimum", "multiply"})

#: Call names that *sink* an array's bytes into a fingerprint, checksum,
#: report envelope, or telemetry snapshot (RL303's protected readers).
SINK_FUNCS: FrozenSet[str] = frozenset(
    {
        "fingerprint_of",
        "trace_fingerprint",
        "combined_fingerprint",
        "sha256",
        "checksum",
        "ReplicateEnvelope",
    }
)

#: Method sinks: ``<receiver>.<attr>(...)`` where the receiver is a
#: telemetry recorder by convention.
SINK_RECORDER_METHODS: FrozenSet[str] = frozenset({"count", "gauge", "series"})
SINK_RECORDER_NAMES: FrozenSet[str] = frozenset({"rec", "recorder"})

#: ``arr.tobytes()`` reads the array's bytes directly: a sink too.
SINK_ARRAY_METHODS: FrozenSet[str] = frozenset({"tobytes", "tofile"})


def tensor_tables_digest() -> str:
    """Digest of the numpy intrinsic tables' *contents*.

    Participates in the incremental-cache ruleset signature: any edit to
    the tables above changes findings, so it must bust warm caches --
    while editing this module's comments or docstrings must not (the
    digest covers table contents, never file bytes).
    """
    digest = hashlib.sha256()
    tables: Iterable[Tuple[str, object]] = [
        ("shape_creators", sorted((k, int(v)) for k, v in NP_SHAPE_CREATORS.items())),
        ("wrap_creators", sorted(NP_WRAP_CREATORS)),
        ("range_creators", sorted((k, int(v)) for k, v in NP_RANGE_CREATORS.items())),
        ("reductions", sorted(NP_REDUCTIONS)),
        ("safe_reductions", sorted(NP_SAFE_REDUCTIONS)),
        ("sort_funcs", sorted(NP_SORT_FUNCS)),
        ("stable_kinds", sorted(STABLE_SORT_KINDS)),
        ("elementwise", sorted(NP_ELEMENTWISE)),
        ("rng_draws", sorted((k, int(v)) for k, v in NP_RNG_DRAWS.items())),
        ("view_methods", sorted(NP_VIEW_METHODS)),
        ("copy_methods", sorted(NP_COPY_METHODS)),
        ("ufunc_hosts", sorted(NP_UFUNC_HOSTS)),
        ("sink_funcs", sorted(SINK_FUNCS)),
        ("sink_recorder_methods", sorted(SINK_RECORDER_METHODS)),
        ("sink_recorder_names", sorted(SINK_RECORDER_NAMES)),
        ("sink_array_methods", sorted(SINK_ARRAY_METHODS)),
        ("dtype_names", sorted((k, int(v)) for k, v in DTYPE_NAMES.items())),
    ]
    for name, content in tables:
        digest.update(f"{name}={content!r}\n".encode())
    return digest.hexdigest()
