"""Module index and import graph for whole-program (``--project``) analysis.

The per-file rules in :mod:`repro.lint.rules` see one module at a time;
the project rules (RL101-RL106) need to see *between* modules: which
package imports which, where the cycles are, which ``__init__`` exports
drift from their definitions.  This module builds that substrate once
per run:

* :func:`find_package_root` locates the ``repro`` package among the lint
  targets (``src/repro`` itself, or a ``src`` directory containing it);
* :func:`load_project` parses every module under the root into a
  :class:`ProjectModule` (reusing the per-file
  :class:`~repro.lint.engine.ModuleContext`) and extracts every
  repro-internal import -- including relative and function-local
  imports -- into :class:`ImportEdge` records;
* :meth:`ImportGraph.cycles` runs Tarjan's SCC algorithm over the module
  graph, with sorted adjacency so the reported cycles are deterministic.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.engine import ModuleContext

#: The importable top-level package this analysis understands.
ROOT_PACKAGE = "repro"


@dataclass(frozen=True)
class ImportEdge:
    """One internal import: ``source`` depends on ``target``.

    Attributes:
        source: Dotted name of the importing module.
        target: Dotted name of the imported module (always internal).
        lineno: Line of the import statement in the source module.
        col: Column of the import statement (1-based, for findings).
        names: Names bound by a from-import (empty for plain imports or
            when the whole submodule is imported).
        top_level: False for imports inside a function body, which run
            lazily (the sanctioned way to break an import cycle).
    """

    source: str
    target: str
    lineno: int
    col: int
    names: Tuple[str, ...] = ()
    top_level: bool = True


@dataclass
class ProjectModule:
    """One parsed module of the project."""

    name: str
    path: str
    context: ModuleContext
    #: ``repro`` subpackage ("sim", "dca", ...); "" for ``repro/__init__``.
    package: str = ""
    #: True for ``__init__.py`` files (the module *is* a package).
    is_package: bool = False


class ImportGraph:
    """The project's modules and the internal imports between them."""

    def __init__(self) -> None:
        self.modules: Dict[str, ProjectModule] = {}
        self.edges: List[ImportEdge] = []
        self._adjacency: Optional[Dict[str, List[str]]] = None

    def add_module(self, module: ProjectModule) -> None:
        self.modules[module.name] = module
        self._adjacency = None

    def add_edge(self, edge: ImportEdge) -> None:
        self.edges.append(edge)
        self._adjacency = None

    def adjacency(self) -> Dict[str, List[str]]:
        """Module -> sorted unique imported modules (internal only)."""
        if self._adjacency is None:
            out: Dict[str, Set[str]] = {name: set() for name in self.modules}
            for edge in self.edges:
                if edge.target in self.modules:
                    out.setdefault(edge.source, set()).add(edge.target)
            self._adjacency = {name: sorted(targets) for name, targets in out.items()}
        return self._adjacency

    def package_edges(self) -> Iterator[Tuple[str, str, ImportEdge]]:
        """Distinct (source package, target package) pairs, first edge each.

        Self-edges (intra-package imports) are omitted; iteration order is
        deterministic (sorted by package pair).
        """
        first: Dict[Tuple[str, str], ImportEdge] = {}
        for edge in self.edges:
            source = self.modules.get(edge.source)
            target = self.modules.get(edge.target)
            if source is None or target is None:
                continue
            pair = (source.package, target.package)
            if pair[0] == pair[1]:
                continue
            if pair not in first or (edge.lineno, edge.source) < (
                first[pair].lineno,
                first[pair].source,
            ):
                first[pair] = edge
        for pair in sorted(first):
            yield pair[0], pair[1], first[pair]

    def cycles(self) -> List[List[str]]:
        """Strongly connected components with more than one module.

        Only imports that execute at import time participate: a
        function-scoped (lazy) import is the sanctioned cycle-breaker,
        so counting it would flag every deliberate fix.  Each cycle is
        returned as a sorted list of module names; cycles are ordered by
        their smallest member, so output is deterministic.
        """
        eager: Dict[str, Set[str]] = {name: set() for name in self.modules}
        for edge in self.edges:
            if edge.top_level and edge.target in self.modules:
                eager.setdefault(edge.source, set()).add(edge.target)
        adjacency = {name: sorted(targets) for name, targets in eager.items()}
        index_of: Dict[str, int] = {}
        lowlink: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        counter = [0]
        sccs: List[List[str]] = []

        def strongconnect(root: str) -> None:
            # Iterative Tarjan: (node, iterator position) frames.
            work: List[Tuple[str, int]] = [(root, 0)]
            while work:
                node, pos = work.pop()
                if pos == 0:
                    index_of[node] = lowlink[node] = counter[0]
                    counter[0] += 1
                    stack.append(node)
                    on_stack.add(node)
                recurse = False
                neighbours = adjacency.get(node, [])
                for i in range(pos, len(neighbours)):
                    succ = neighbours[i]
                    if succ not in index_of:
                        work.append((node, i + 1))
                        work.append((succ, 0))
                        recurse = True
                        break
                    if succ in on_stack:
                        lowlink[node] = min(lowlink[node], index_of[succ])
                if recurse:
                    continue
                if lowlink[node] == index_of[node]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    if len(component) > 1:
                        sccs.append(sorted(component))
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])

        for name in sorted(adjacency):
            if name not in index_of:
                strongconnect(name)
        return sorted(sccs, key=lambda component: component[0])


def find_package_root(paths: Sequence[str]) -> Optional[Path]:
    """Locate the ``repro`` package directory among the lint targets.

    Accepts the package directory itself (``src/repro``), a directory
    containing it (``src``), or any path *inside* the package; returns
    ``None`` when no target reaches an importable ``repro`` package.
    """
    for raw in paths:
        path = Path(raw)
        candidates = [path] if path.is_dir() else list(path.parents)
        for candidate in candidates:
            if candidate.name == ROOT_PACKAGE and (candidate / "__init__.py").is_file():
                return candidate
            nested = candidate / ROOT_PACKAGE
            if (nested / "__init__.py").is_file():
                return nested
    return None


def module_name(path: Path, root: Path) -> str:
    """Dotted module name of ``path`` relative to the package ``root``."""
    relative = path.resolve().relative_to(root.resolve())
    parts = [ROOT_PACKAGE] + list(relative.parts)
    if parts[-1] == "__init__.py":
        parts = parts[:-1]
    else:
        parts[-1] = parts[-1][: -len(".py")]
    return ".".join(parts)


def _base_package_parts(module: ProjectModule) -> List[str]:
    """The package a relative import in ``module`` resolves against."""
    parts = module.name.split(".")
    return parts if module.is_package else parts[:-1]


def _resolve_from_import(
    module: ProjectModule, node: ast.ImportFrom
) -> Optional[str]:
    """Absolute dotted target of a (possibly relative) from-import."""
    if node.level == 0:
        return node.module
    base = _base_package_parts(module)
    if node.level - 1 > len(base):
        return None  # relative import escaping the package: unresolvable
    base = base[: len(base) - (node.level - 1)]
    if node.module:
        base = base + node.module.split(".")
    return ".".join(base) if base else None


def _function_scoped(tree: ast.Module) -> Set[int]:
    """``id()``s of nodes inside function bodies (lazy-import territory).

    Class bodies execute at import time, so they do not count.
    """
    scoped: Set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for sub in ast.walk(node):
                if sub is not node:
                    scoped.add(id(sub))
    return scoped


def extract_edges(
    module: ProjectModule, known_modules: Set[str]
) -> Iterator[ImportEdge]:
    """Every repro-internal import in ``module`` (any nesting depth)."""
    scoped = _function_scoped(module.context.tree)
    for node in ast.walk(module.context.tree):
        eager = id(node) not in scoped
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == ROOT_PACKAGE or alias.name.startswith(ROOT_PACKAGE + "."):
                    if alias.name in known_modules:
                        yield ImportEdge(
                            source=module.name,
                            target=alias.name,
                            lineno=node.lineno,
                            col=node.col_offset + 1,
                            top_level=eager,
                        )
        elif isinstance(node, ast.ImportFrom):
            target = _resolve_from_import(module, node)
            if target is None:
                continue
            if target != ROOT_PACKAGE and not target.startswith(ROOT_PACKAGE + "."):
                continue
            for alias in node.names:
                # ``from repro.pkg import mod`` imports a submodule: point
                # the edge at the submodule so cycles are module-accurate.
                submodule = f"{target}.{alias.name}"
                if submodule in known_modules:
                    yield ImportEdge(
                        source=module.name,
                        target=submodule,
                        lineno=node.lineno,
                        col=node.col_offset + 1,
                        top_level=eager,
                    )
                elif target in known_modules:
                    yield ImportEdge(
                        source=module.name,
                        target=target,
                        lineno=node.lineno,
                        col=node.col_offset + 1,
                        names=(alias.name,),
                        top_level=eager,
                    )


def load_project(root: Path) -> ImportGraph:
    """Parse every module under ``root`` and build the import graph.

    Files that fail to parse are skipped here; the per-file engine
    already reports them as RL000 findings.
    """
    graph = ImportGraph()
    for path in sorted(root.rglob("*.py")):
        try:
            context = ModuleContext.parse(path.read_text(encoding="utf-8"), str(path))
        except SyntaxError:
            continue
        name = module_name(path, root)
        parts = name.split(".")
        graph.add_module(
            ProjectModule(
                name=name,
                path=str(path),
                context=context,
                package=parts[1] if len(parts) > 1 else "",
                is_package=path.name == "__init__.py",
            )
        )
    known = set(graph.modules)
    for module in graph.modules.values():
        for edge in extract_edges(module, known):
            graph.add_edge(edge)
    return graph
