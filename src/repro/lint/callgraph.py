"""A conservative interprocedural call graph over the project.

Resolution is name-based and deliberately under-approximate: an edge is
recorded only when a call (or a bare reference -- callbacks count) can
be resolved statically to a known function:

* ``f(...)`` where ``f`` is a top-level function of the same module;
* ``f(...)`` where ``f`` was bound by ``from repro.x import f`` and the
  target module defines it at top level -- or merely *re-exports* it
  (package facades like ``repro/dca/__init__``): the from-import chain
  is chased to the defining module, so pool workers that call
  facade-imported entry points (``run_dca``, ``run_columnar_dca``)
  still pull the whole engine into worker-reachability;
* ``mod.f(...)`` where ``mod`` is an imported repro module (or alias);
* ``self.m(...)`` inside a class whose body defines method ``m``;
* ``Cls(...)`` for a project class -- the edge goes to
  ``Cls.__init__`` (entering the class runs its constructor);
* ``obj.m(...)`` where ``obj`` is a local bound by ``obj = Cls(...)``
  in the same function (one level of local type tracking).

Anything dynamic (dict dispatch, ``getattr``, higher-order parameters)
is skipped.  Rules built on reachability therefore miss some paths
(false negatives) but never invent one (no false positives from phantom
edges).  Calls made inside a nested function are attributed to the
enclosing top-level function or method, since the nested function can
only run once its owner does.

Function identifiers are ``module:qualname`` strings, e.g.
``repro.sim.engine:Simulator.run`` or ``repro.parallel.dca:run_dca_replicate``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.graph import ImportGraph, ProjectModule, ROOT_PACKAGE


@dataclass
class FunctionInfo:
    """One analyzable function or method."""

    qualname: str  # "repro.mod:func" or "repro.mod:Class.method"
    module: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    class_name: Optional[str] = None

    @property
    def lineno(self) -> int:
        return getattr(self.node, "lineno", 1)


@dataclass
class ModuleScope:
    """Name-resolution context for one module."""

    #: Local alias -> imported repro module ("import repro.sim as s").
    module_aliases: Dict[str, str] = field(default_factory=dict)
    #: Local name -> (source module, original name) from from-imports.
    from_imports: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    #: Top-level function names of this module.
    functions: Set[str] = field(default_factory=set)
    #: Top-level class name -> method names.
    classes: Dict[str, Set[str]] = field(default_factory=dict)
    #: Every top-level bound name (functions, classes, assigns, imports).
    bindings: Set[str] = field(default_factory=set)


def module_scope(module: ProjectModule) -> ModuleScope:
    """Extract the top-level symbol table of one module."""
    scope = ModuleScope()
    for node in module.context.tree.body:
        _bind_statement(node, scope)
    # Imports anywhere in the file still resolve names used at that depth;
    # record them module-wide (conservative: the alias exists after import).
    for node in ast.walk(module.context.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == ROOT_PACKAGE or alias.name.startswith(ROOT_PACKAGE + "."):
                    if alias.asname:
                        scope.module_aliases[alias.asname] = alias.name
                    else:
                        # ``import repro.x.y`` binds only ``repro``; deeper
                        # attribute chains are left unresolved (conservative).
                        scope.module_aliases[ROOT_PACKAGE] = ROOT_PACKAGE
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            if node.module == ROOT_PACKAGE or node.module.startswith(ROOT_PACKAGE + "."):
                for alias in node.names:
                    scope.from_imports[alias.asname or alias.name] = (
                        node.module,
                        alias.name,
                    )
    return scope


def _bind_statement(node: ast.stmt, scope: ModuleScope) -> None:
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        scope.functions.add(node.name)
        scope.bindings.add(node.name)
    elif isinstance(node, ast.ClassDef):
        methods = {
            item.name
            for item in node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        scope.classes[node.name] = methods
        scope.bindings.add(node.name)
    elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if isinstance(target, ast.Name):
                scope.bindings.add(target.id)
            elif isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    if isinstance(element, ast.Name):
                        scope.bindings.add(element.id)
    elif isinstance(node, ast.Import):
        for alias in node.names:
            scope.bindings.add(alias.asname or alias.name.split(".")[0])
    elif isinstance(node, ast.ImportFrom):
        for alias in node.names:
            scope.bindings.add(alias.asname or alias.name)
    elif isinstance(node, (ast.If, ast.Try)):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt):
                _bind_statement(child, scope)


class CallGraph:
    """Functions and the resolved call/reference edges between them."""

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionInfo] = {}
        self.calls: Dict[str, Set[str]] = {}
        self.scopes: Dict[str, ModuleScope] = {}

    def add_edge(self, caller: str, callee: str) -> None:
        self.calls.setdefault(caller, set()).add(callee)

    def reachable(self, roots: Set[str]) -> Set[str]:
        """Every function reachable from ``roots`` (roots included)."""
        seen = set(root for root in roots if root in self.functions)
        frontier = list(seen)
        while frontier:
            current = frontier.pop()
            for callee in self.calls.get(current, ()):
                if callee not in seen and callee in self.functions:
                    seen.add(callee)
                    frontier.append(callee)
        return seen

    def callers_closure(self, targets: Set[str]) -> Set[str]:
        """Every function from which some function in ``targets`` is
        reachable (targets included): the reverse-reachability set."""
        reverse: Dict[str, Set[str]] = {}
        for caller, callees in self.calls.items():
            for callee in callees:
                reverse.setdefault(callee, set()).add(caller)
        seen = set(target for target in targets if target in self.functions)
        frontier = list(seen)
        while frontier:
            current = frontier.pop()
            for caller in reverse.get(current, ()):
                if caller not in seen:
                    seen.add(caller)
                    frontier.append(caller)
        return seen


def _callable_references(body: ast.AST) -> Iterator[ast.expr]:
    """Expressions in ``body`` that may denote a function: call targets
    and bare name/attribute loads (callbacks passed around)."""
    for node in ast.walk(body):
        if isinstance(node, ast.Call):
            yield node.func
        elif isinstance(node, (ast.Name, ast.Attribute)) and isinstance(
            getattr(node, "ctx", None), ast.Load
        ):
            yield node


def _chase_reexport(
    target_module: str,
    symbol: str,
    scopes: Dict[str, ModuleScope],
    *,
    kind: str = "functions",
) -> Optional[Tuple[str, str]]:
    """Follow ``from X import name`` chains to the module that *defines*
    ``symbol`` (as a function or, with ``kind="classes"``, a class).

    Package facades (``repro/dca/__init__``) re-export their submodules'
    entry points; without chasing the chain, a worker like
    ``repro.parallel.shards:run_dca_shard`` calling the facade-imported
    ``run_columnar_dca`` would dead-end at the ``__init__`` and the
    whole engine would silently escape worker-reachability rules.
    """
    seen: Set[Tuple[str, str]] = set()
    while (target_module, symbol) not in seen:
        seen.add((target_module, symbol))
        target_scope = scopes.get(target_module)
        if target_scope is None:
            return None
        defined = (
            target_scope.classes if kind == "classes" else target_scope.functions
        )
        if symbol in defined:
            return target_module, symbol
        imported = target_scope.from_imports.get(symbol)
        if imported is None:
            return None
        target_module, symbol = imported
    return None  # re-export cycle; give up conservatively


def resolve_reference(
    expr: ast.expr,
    module: ProjectModule,
    scope: ModuleScope,
    graph: ImportGraph,
    scopes: Dict[str, ModuleScope],
    class_name: Optional[str] = None,
) -> Optional[str]:
    """Resolve a name/attribute expression to a known function qualname."""
    if isinstance(expr, ast.Name):
        name = expr.id
        if name in scope.functions:
            return f"{module.name}:{name}"
        if name in scope.from_imports:
            target_module, original = scope.from_imports[name]
            resolved = _chase_reexport(target_module, original, scopes)
            if resolved is not None:
                return f"{resolved[0]}:{resolved[1]}"
        return None
    if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
        base = expr.value.id
        if base == "self" and class_name is not None:
            methods = scope.classes.get(class_name, set())
            if expr.attr in methods:
                return f"{module.name}:{class_name}.{expr.attr}"
            return None
        target_module = scope.module_aliases.get(base)
        if target_module is None and base in scope.from_imports:
            # ``from repro.parallel import engine`` -> base is a submodule.
            source, original = scope.from_imports[base]
            candidate = f"{source}.{original}"
            if candidate in graph.modules:
                target_module = candidate
        if target_module and target_module in scopes:
            resolved = _chase_reexport(target_module, expr.attr, scopes)
            if resolved is not None:
                return f"{resolved[0]}:{resolved[1]}"
    return None


def resolve_class(
    name: str,
    module: ProjectModule,
    scope: ModuleScope,
    scopes: Dict[str, ModuleScope],
) -> Optional[Tuple[str, str]]:
    """Resolve a bare name to ``(module, class)`` for a project class,
    locally defined or from-imported."""
    if name in scope.classes:
        return module.name, name
    imported = scope.from_imports.get(name)
    if imported is not None:
        source, original = imported
        return _chase_reexport(source, original, scopes, kind="classes")
    return None


def _local_instance_types(
    func: ast.AST,
    module: ProjectModule,
    scope: ModuleScope,
    scopes: Dict[str, ModuleScope],
) -> Dict[str, Tuple[str, str]]:
    """One level of local type tracking: ``var = ClassName(...)`` locals
    mapped to their ``(module, class)``, so ``var.method(...)`` calls
    resolve to project methods."""
    out: Dict[str, Tuple[str, str]] = {}
    for node in ast.walk(func):
        if not (isinstance(node, ast.Assign) and isinstance(node.value, ast.Call)):
            continue
        ctor = node.value.func
        if not isinstance(ctor, ast.Name):
            continue
        klass = resolve_class(ctor.id, module, scope, scopes)
        if klass is None:
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                out[target.id] = klass
    return out


def build_callgraph(graph: ImportGraph) -> CallGraph:
    """Build the project call graph from a loaded import graph."""
    callgraph = CallGraph()
    scopes: Dict[str, ModuleScope] = {
        name: module_scope(module) for name, module in graph.modules.items()
    }
    callgraph.scopes = scopes
    # Pass 1: register every top-level function and method.
    for name, module in graph.modules.items():
        for node in module.context.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{name}:{node.name}"
                callgraph.functions[qualname] = FunctionInfo(qualname, name, node)
            elif isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        qualname = f"{name}:{node.name}.{item.name}"
                        callgraph.functions[qualname] = FunctionInfo(
                            qualname, name, item, class_name=node.name
                        )
    # Pass 2: resolve references inside every function body.
    for qualname, info in callgraph.functions.items():
        module = graph.modules[info.module]
        scope = scopes[info.module]
        local_types = _local_instance_types(info.node, module, scope, scopes)
        for expr in _callable_references(info.node):
            resolved = resolve_reference(
                expr, module, scope, graph, scopes, class_name=info.class_name
            )
            if (
                resolved is None
                and isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
            ):
                # est = Estimator(); est.observe(...) -> Estimator.observe.
                typed = local_types.get(expr.value.id)
                if typed is not None:
                    owner_module, owner_class = typed
                    methods = scopes[owner_module].classes.get(owner_class, set())
                    if expr.attr in methods:
                        resolved = f"{owner_module}:{owner_class}.{expr.attr}"
            if resolved is None and isinstance(expr, ast.Name):
                # Estimator(...) (or Estimator passed as a callback):
                # entering the class runs its constructor.
                klass = resolve_class(expr.id, module, scope, scopes)
                if klass is not None:
                    candidate = f"{klass[0]}:{klass[1]}.__init__"
                    if candidate in callgraph.functions:
                        resolved = candidate
            if resolved is not None and resolved != qualname:
                callgraph.add_edge(qualname, resolved)
    return callgraph
