"""The findings baseline: adopt a rule without boiling the ocean.

A committed ``.reprolint-baseline.json`` records the fingerprints of
known, not-yet-fixed findings.  Baselined findings are reported as
suppressed instead of failing the run, so a new rule can land with the
tree still red in places -- but *new* findings always fail, and fixed
findings turn their baseline entries stale (visible in the summary), so
the count only ratchets down.  ``--update-baseline`` rewrites the file
from the current findings.

Fingerprints deliberately exclude line numbers: moving code must not
churn the baseline.  Identical (path, rule, message) findings are
disambiguated by occurrence index within the file.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Sequence, Set, Tuple

from repro.lint.findings import Finding

BASELINE_SCHEMA = "repro-lint-baseline/1"
DEFAULT_BASELINE_NAME = ".reprolint-baseline.json"


def _normalized_path(path: str) -> str:
    return Path(path).as_posix()


def finding_fingerprints(findings: Sequence[Finding]) -> List[Tuple[str, Finding]]:
    """Stable (fingerprint, finding) pairs; line numbers excluded."""
    occurrence: Dict[Tuple[str, str, str], int] = {}
    out: List[Tuple[str, Finding]] = []
    for finding in sorted(findings):
        key = (_normalized_path(finding.path), finding.rule_id, finding.message)
        index = occurrence.get(key, 0)
        occurrence[key] = index + 1
        digest = hashlib.sha256(
            "\t".join((*key, str(index))).encode("utf-8")
        ).hexdigest()[:16]
        out.append((digest, finding))
    return out


def load_baseline(path: Path) -> Set[str]:
    """The fingerprints recorded in a baseline file.

    Raises:
        ValueError: if the file is not a recognisable baseline document.
    """
    document = json.loads(path.read_text(encoding="utf-8"))
    schema = document.get("schema") if isinstance(document, dict) else None
    if schema != BASELINE_SCHEMA:
        raise ValueError(
            f"{path} is not a reprolint baseline (expected schema "
            f"{BASELINE_SCHEMA!r}, got {schema!r})"
        )
    entries = document.get("entries", [])
    return {
        entry["fingerprint"]
        for entry in entries
        if isinstance(entry, dict) and "fingerprint" in entry
    }


def apply_baseline(
    findings: Sequence[Finding], baseline: Set[str]
) -> Tuple[List[Finding], int, int]:
    """Split findings against a baseline.

    Returns:
        (new findings, baselined count, stale entry count) -- stale
        entries are baseline fingerprints no current finding matches,
        i.e. findings that have been fixed and can be dropped from the
        file with ``--update-baseline``.
    """
    kept: List[Finding] = []
    matched: Set[str] = set()
    for fingerprint, finding in finding_fingerprints(findings):
        if fingerprint in baseline:
            matched.add(fingerprint)
        else:
            kept.append(finding)
    return kept, len(matched), len(baseline - matched)


def write_baseline(findings: Sequence[Finding], path: Path) -> int:
    """Write a baseline covering ``findings``; returns the entry count."""
    entries = [
        {
            "fingerprint": fingerprint,
            "path": _normalized_path(finding.path),
            "rule": finding.rule_id,
            "message": finding.message,
        }
        for fingerprint, finding in finding_fingerprints(findings)
    ]
    document = {"schema": BASELINE_SCHEMA, "entries": entries}
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return len(entries)
