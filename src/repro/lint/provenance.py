"""The RNG-provenance lattice used by the flow analysis (``--flows``).

Every abstract value the interpreter in :mod:`repro.lint.absint` tracks
carries two independent facts:

* **provenance** -- which RNG stream (if any) the value originates from.
  The provenance lattice is flat over the labels, with a two-point chain
  on top::

          ⊤u (an *unseeded* stream -- no replayable identity at all)
          │
          ⊤  (a stream of merged/unknown but still seeded provenance)
        / | \\
      "a" "b" "c" ...   (one known stream label)
        \\ | /
          ⊥  (not derived from any RNG stream)

  A value acquires a label at an origin site -- ``RngRegistry.spawn(...)``,
  ``registry.stream(...)``, a seeded ``random.Random(seed)``, or a
  stream-taking parameter -- and keeps it through assignments, calls,
  containers, and closures.  Joining two *different* labels loses the
  identity and yields ⊤ (e.g. the ``rng or random.Random(0)`` fallback
  idiom: definitely *some* deterministic stream, just not a single known
  one), while an unseeded ``random.Random()`` mints ⊤u directly --
  OS-entropy seeded, nothing to replay -- and ⊤u is absorbing: once
  unseeded provenance mixes in, it never washes out.  The distinction is
  what lets RL203 flag only genuinely unreplayable RNGs.

* **orderedness** -- whether iterating the value visits elements in a
  deterministic order.  This is a three-point chain
  ``ORDERED < UNKNOWN < UNORDERED`` whose join is "most pessimistic
  wins"; sets and ``as_completed(...)`` are UNORDERED, ``sorted(...)``
  re-establishes ORDERED.

Both lattices are finite, so the usual algebraic laws (commutativity,
associativity, idempotence of join; monotonicity of the transfer
functions built on join) are directly property-testable -- see
``tests/lint/test_provenance.py``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Optional, Tuple


@dataclass(frozen=True)
class Provenance:
    """One point of the flat RNG-provenance lattice.

    ``label is None and not top`` is ⊥ (no RNG provenance); a non-None
    ``label`` is a single known stream; ``top`` is ⊤ (a stream whose
    single identity was lost by merging); ``top and unseeded`` is ⊤u (a
    stream that never had a replayable identity -- an unseeded
    ``random.Random()``).
    """

    label: Optional[str] = None
    top: bool = False
    unseeded: bool = False

    def __post_init__(self) -> None:
        if self.top and self.label is not None:
            raise ValueError("⊤ carries no label")
        if self.unseeded and not self.top:
            raise ValueError("unseeded provenance is a kind of ⊤")

    @property
    def is_stream(self) -> bool:
        """True when the value is (or contains) an RNG stream at all."""
        return self.top or self.label is not None

    @property
    def is_bottom(self) -> bool:
        return not self.is_stream

    def join(self, other: "Provenance") -> "Provenance":
        """Least upper bound of two lattice points."""
        if self == other:
            return self
        if self.is_bottom:
            return other
        if other.is_bottom:
            return self
        # ⊤u is absorbing: unseeded provenance never washes out.
        if self.unseeded or other.unseeded:
            return TOP_UNSEEDED
        # Two distinct seeded streams (or ⊤ itself): identity lost.
        return TOP

    def leq(self, other: "Provenance") -> bool:
        """The lattice partial order (``self`` ⊑ ``other``)."""
        return self.join(other) == other

    def __str__(self) -> str:  # pragma: no cover - debug aid
        if self.unseeded:
            return "⊤u"
        if self.top:
            return "⊤"
        if self.label is None:
            return "⊥"
        return f"stream({self.label!r})"


#: The lattice extremes, shared singletons.
BOTTOM = Provenance()
TOP = Provenance(top=True)
TOP_UNSEEDED = Provenance(top=True, unseeded=True)


def stream(label: str) -> Provenance:
    """The lattice point for one known stream ``label``."""
    return Provenance(label=label)


def join_all(values: Iterable[Provenance]) -> Provenance:
    out = BOTTOM
    for value in values:
        out = out.join(value)
    return out


class Orderedness(enum.IntEnum):
    """Whether iterating a value yields a deterministic order.

    A chain lattice: join is ``max``.  ``UNORDERED`` means *definitely*
    hash-order or completion-order dependent (set iteration,
    ``as_completed``); ``UNKNOWN`` is the conservative middle used for
    values the analysis cannot classify, so rules built on this domain
    only fire on definite UNORDERED evidence (no invented findings).
    """

    ORDERED = 0
    UNKNOWN = 1
    UNORDERED = 2

    def join(self, other: "Orderedness") -> "Orderedness":
        return max(self, other)

    def leq(self, other: "Orderedness") -> bool:
        return self <= other


@dataclass(frozen=True)
class AbstractValue:
    """The product domain the interpreter propagates: provenance x order."""

    prov: Provenance = BOTTOM
    order: Orderedness = Orderedness.UNKNOWN

    def join(self, other: "AbstractValue") -> "AbstractValue":
        return AbstractValue(self.prov.join(other.prov), self.order.join(other.order))

    def leq(self, other: "AbstractValue") -> bool:
        return self.prov.leq(other.prov) and self.order.leq(other.order)


#: The neutral value for expressions the analysis does not model.
UNKNOWN_VALUE = AbstractValue(BOTTOM, Orderedness.UNKNOWN)
#: Plain data: no provenance, deterministic iteration order.
ORDERED_VALUE = AbstractValue(BOTTOM, Orderedness.ORDERED)


@dataclass(frozen=True)
class FunctionSummary:
    """Bounded context-sensitive summary of one function.

    Computed by interpreting the function body under one *context* (the
    tuple of parameter provenances at a call site); memoized per
    (function, context) with a cap on distinct contexts, beyond which
    the generic context's summary is reused.

    Attributes:
        returns: Abstract value of everything the function may return.
        consumed: Stream labels the function (transitively) draws from.
        consumes_top: True when the function draws from a ⊤ stream.
        consumed_params: Names of parameters whose stream the function
            consumes -- draws from, hands off to a consuming callee, or
            stores on ``self`` (the caller must treat the stream as
            handed over).
        created: Labels of streams the function itself creates.
    """

    returns: AbstractValue = UNKNOWN_VALUE
    consumed: FrozenSet[str] = frozenset()
    consumes_top: bool = False
    consumed_params: FrozenSet[str] = frozenset()
    created: FrozenSet[str] = frozenset()


#: Summary used while a recursive cycle is being computed: assume
#: nothing (under-approximate, like the call graph itself).
NEUTRAL_SUMMARY = FunctionSummary()
