"""Project-mode analysis: per-file rules fanned out over the process
pool, plus the whole-program rules (RL101-RL106).

This is the linter dogfooding PR 2's replication engine: each file is an
independent work item, so per-file linting runs through
:func:`repro.parallel.parallel_map` with the same ordering guarantee the
experiment harnesses rely on -- ``--jobs N`` output is byte-identical to
``--jobs 1`` because results come back in submission order and findings
are globally sorted before rendering.

The whole-program pass (import graph, call graph, project rules) runs
in the parent process: it is one indivisible analysis over the
``repro`` package, discovered among the lint targets by
:func:`~repro.lint.graph.find_package_root`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lint.cache import LintCache, file_sha, tree_hash
from repro.lint.engine import LintEngine, iter_python_files, registered_rules, suppressions
from repro.lint.findings import Finding
from repro.lint.graph import find_package_root, load_project
from repro.lint.project_rules import ProjectContext, registered_project_rules


@dataclass
class ProjectReport:
    """Aggregated outcome of a project-mode run."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    #: Whether a ``repro`` package root was found for whole-program rules.
    analyzed_project: bool = False


def _lint_file_worker(item: Tuple[str, Tuple[str, ...]]) -> Tuple[List[Finding], int]:
    """Lint one file with the selected per-file rules.

    Module-level and picklable by construction (RL102's own demand): the
    engine is rebuilt inside the worker from rule ids, and findings are
    frozen dataclasses that pickle cleanly.
    """
    path, rule_ids = item
    registry = registered_rules()
    engine = LintEngine(rules=[registry[rule_id]() for rule_id in rule_ids])
    findings = engine.lint_file(Path(path))
    return findings, engine.suppressed_count


def run_project_rules(
    paths: Sequence[str],
    project_rule_ids: Sequence[str],
    flow_rule_ids: Sequence[str] = (),
    tensor_rule_ids: Sequence[str] = (),
) -> Tuple[List[Finding], int, bool]:
    """Run whole-program rules over the ``repro`` package in ``paths``.

    Returns (findings, suppressed count, package-root-found).  Findings
    honour the same inline/file/next-line suppression comments as the
    per-file rules.  When ``flow_rule_ids`` is non-empty the abstract
    interpreter runs once and the RL2xx flow rules share its result;
    likewise ``tensor_rule_ids`` builds the array analysis once for the
    RL3xx rules.
    """
    root = find_package_root(paths)
    if root is None:
        return [], 0, False
    graph = load_project(root)
    project = ProjectContext.build(graph)
    registry = registered_project_rules()
    silenced_by_path: Dict[str, Dict[int, set]] = {
        module.path: suppressions(module.context.source)
        for module in graph.modules.values()
    }
    findings: List[Finding] = []
    suppressed = 0

    def admit(finding: Finding) -> None:
        nonlocal suppressed
        silenced = silenced_by_path.get(finding.path, {})
        if finding.rule_id in silenced.get(0, set()) or finding.rule_id in silenced.get(
            finding.line, set()
        ):
            suppressed += 1
            return
        findings.append(finding)

    for rule_id in sorted(project_rule_ids):
        rule = registry[rule_id]()
        for finding in rule.check(project):
            admit(finding)
    if flow_rule_ids:
        from repro.lint.absint import FlowAnalysis
        from repro.lint.flow_rules import registered_flow_rules

        analysis = FlowAnalysis.build(project.graph, project.callgraph)
        flow_registry = registered_flow_rules()
        for rule_id in sorted(flow_rule_ids):
            rule = flow_registry[rule_id]()
            for finding in rule.check(project, analysis):
                admit(finding)
    if tensor_rule_ids:
        from repro.lint.tensor_absint import TensorAnalysis
        from repro.lint.tensor_rules import registered_tensor_rules

        tensor_analysis = TensorAnalysis.build(project.graph, project.callgraph)
        tensor_registry = registered_tensor_rules()
        for rule_id in sorted(tensor_rule_ids):
            rule = tensor_registry[rule_id]()
            for finding in rule.check(project, tensor_analysis):
                admit(finding)
    return findings, suppressed, True


def lint_project(
    paths: Sequence[str],
    *,
    rule_ids: Sequence[str],
    project_rule_ids: Sequence[str],
    flow_rule_ids: Sequence[str] = (),
    tensor_rule_ids: Sequence[str] = (),
    jobs: Optional[int] = 1,
    cache: Optional[LintCache] = None,
) -> ProjectReport:
    """Run the full project analysis: per-file rules (parallel) plus
    whole-program rules (in-process).

    With ``cache``, per-file results are reused for files whose sha256
    is unchanged and the whole-program pass is reused when the entire
    tree hash matches; the findings are byte-identical either way.
    """
    report = ProjectReport()
    files = [str(path) for path in iter_python_files(paths)]
    report.files_checked = len(files)
    shas: Dict[str, str] = {}
    if cache is not None:
        shas = {path: file_sha(path) for path in files}
        cache.prune(files)
    if rule_ids and files:
        pending: List[str] = []
        for path in files:
            hit = (
                cache.get_file(path, shas[path]) if cache is not None else None
            )
            if hit is not None:
                findings, suppressed = hit
                report.findings.extend(findings)
                report.suppressed += suppressed
            else:
                pending.append(path)
        if pending:
            items = [(path, tuple(rule_ids)) for path in pending]
            if jobs is not None and jobs <= 1:
                results = [_lint_file_worker(item) for item in items]
            else:
                from repro.parallel import parallel_map

                results = parallel_map(_lint_file_worker, items, jobs=jobs)
            for path, (findings, suppressed) in zip(pending, results):
                report.findings.extend(findings)
                report.suppressed += suppressed
                if cache is not None:
                    cache.put_file(path, shas[path], findings, suppressed)
    if project_rule_ids or flow_rule_ids or tensor_rule_ids:
        project_key = tree_hash(shas) if cache is not None else ""
        hit = cache.get_project(project_key) if cache is not None else None
        if hit is not None:
            project_findings, suppressed, analyzed = hit
        else:
            project_findings, suppressed, analyzed = run_project_rules(
                paths, project_rule_ids, flow_rule_ids, tensor_rule_ids
            )
            if cache is not None:
                cache.put_project(
                    project_key, project_findings, suppressed, analyzed
                )
        report.findings.extend(project_findings)
        report.suppressed += suppressed
        report.analyzed_project = analyzed
    if cache is not None:
        cache.save()
    report.findings.sort()
    return report
