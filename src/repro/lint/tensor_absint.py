"""Flow-sensitive abstract interpretation over array values (``--tensors``).

The tensor sibling of :mod:`repro.lint.absint`: where the flow analysis
tags every value with RNG provenance, this pass tags every value with an
:class:`~repro.lint.arrays.ArrayValue` -- symbolic shape, dtype lattice
point, aliasing regions, and iteration orderedness -- and propagates the
tags statement by statement through assignments, branches (joined at the
merge point), loops, containers, and interprocedurally through memoized
function summaries over the same call graph the RL10x/RL20x rules use.

Only modules that import numpy are interpreted: the domain is about
array semantics, and skipping scalar modules keeps the pass cheap and
silent where it has nothing to say.

Array facts are minted at the numpy intrinsics tabulated in
:mod:`repro.lint.arrays`: ``np.zeros(tasks)`` produces an int/float
array with the symbolic first dim ``tasks``; ``rng.integers(0, 9, n)``
an int64 column of length ``n``; basic slices and ``reshape`` *share*
their base's aliasing regions while fancy/boolean indexing, ``copy``,
``astype`` and arithmetic mint fresh ones.

While interpreting, the analysis records the *events* the RL30x rules
consume, each anchored to its AST node:

* provably incompatible broadcasts and mask lengths (RL301);
* dtype drifts -- float stores into int columns, narrowing ``astype``,
  int columns rebound to float results, ``==`` across int/float
  (RL302);
* in-place mutation through an alias of a region that already reached a
  fingerprint/envelope/telemetry sink (RL303);
* ``sort``/``argsort`` without a stable ``kind``, ``np.unique`` index
  assumptions and float ufunc reductions over unordered operands
  (RL304).

Everything is under-approximate, like every other reprolint tier: a
rule fires only on definite evidence (two *known* incompatible dims, a
*known* int column taking a *known* float), so clean means "nothing
statically visible is wrong", never "proved safe".
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.lint.arrays import (
    ArrayValue,
    DTYPE_NAMES,
    Dim,
    DType,
    NP_COPY_METHODS,
    NP_ELEMENTWISE,
    NP_RANGE_CREATORS,
    NP_REDUCTIONS,
    NP_RNG_DRAWS,
    NP_SAFE_REDUCTIONS,
    NP_SHAPE_CREATORS,
    NP_SORT_FUNCS,
    NP_UFUNC_HOSTS,
    NP_VIEW_METHODS,
    NP_WRAP_CREATORS,
    ORDERED_SCALAR,
    SINK_ARRAY_METHODS,
    SINK_FUNCS,
    SINK_RECORDER_METHODS,
    SINK_RECORDER_NAMES,
    STABLE_SORT_KINDS,
    UNKNOWN_ARRAY,
    UNKNOWN_DIM,
    broadcast_dims,
    dims_incompatible,
    join_all,
    narrows,
    scalar,
)
from repro.lint.callgraph import CallGraph, FunctionInfo, ModuleScope, resolve_reference
from repro.lint.graph import ImportGraph, ProjectModule
from repro.lint.provenance import Orderedness

#: numpy rng draw methods -> index of the positional size argument
#: (``size=`` kwarg always wins); ``random(n)`` takes it first,
#: ``uniform(lo, hi, n)`` / ``integers(lo, hi, n)`` third.
_RNG_SIZE_POSITION = {"random": 0, "uniform": 2, "normal": 2, "integers": 2, "beta": 2}

#: Binary operators whose array semantics are elementwise broadcasting.
_BROADCAST_OPS = (
    ast.Add,
    ast.Sub,
    ast.Mult,
    ast.Div,
    ast.FloorDiv,
    ast.Mod,
    ast.Pow,
    ast.BitAnd,
    ast.BitOr,
    ast.BitXor,
    ast.LShift,
    ast.RShift,
)

#: Builtins preserving the operand's iteration order (cf. absint).
_PRESERVING_CALLS = frozenset({"list", "tuple", "iter", "reversed", "enumerate"})


# ---------------------------------------------------------------------------
# Event records
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BroadcastMismatch:
    """Two provably incompatible dims met in a broadcasting op."""

    module: str
    function: Optional[str]
    node: ast.AST
    left: Dim
    right: Dim
    op: str  # human-readable operator, e.g. "*" or "=="


@dataclass(frozen=True)
class MaskMismatch:
    """A boolean mask whose length provably differs from the masked axis."""

    module: str
    function: Optional[str]
    node: ast.AST
    mask_dim: Dim
    axis_dim: Dim


@dataclass(frozen=True)
class DtypeDrift:
    """A silent dtype change the author probably did not intend."""

    module: str
    function: Optional[str]
    node: ast.AST
    kind: str  # store-float-into-int | narrowing-astype |
    #          # int-rebound-to-float | cross-dtype-compare
    src: DType
    dst: DType
    name: str = ""  # the column/variable involved, when known


@dataclass(frozen=True)
class AliasMutation:
    """In-place mutation through an alias of an already-sunk region."""

    module: str
    function: Optional[str]
    node: ast.AST
    alias: str  # the name mutated through
    sunk_as: str  # the name the region reached the sink under
    sink: str  # the sink call, e.g. "fingerprint_of"
    sink_lineno: int


@dataclass(frozen=True)
class UnstableSort:
    """``sort``/``argsort`` without ``kind="stable"``."""

    module: str
    function: Optional[str]
    node: ast.AST
    func: str  # e.g. "np.argsort" or ".argsort()"


@dataclass(frozen=True)
class UniqueOrder:
    """``np.unique(..., return_index/inverse)`` over an unordered input."""

    module: str
    function: Optional[str]
    node: ast.AST


@dataclass(frozen=True)
class ArrayReduce:
    """A float ufunc reduction over a definitely-unordered operand."""

    module: str
    function: Optional[str]
    node: ast.AST
    reducer: str


@dataclass
class TensorEvents:
    """Everything the RL30x rules consume, collected in one pass."""

    broadcasts: List[BroadcastMismatch] = field(default_factory=list)
    masks: List[MaskMismatch] = field(default_factory=list)
    drifts: List[DtypeDrift] = field(default_factory=list)
    alias_mutations: List[AliasMutation] = field(default_factory=list)
    unstable_sorts: List[UnstableSort] = field(default_factory=list)
    unique_orders: List[UniqueOrder] = field(default_factory=list)
    unordered_reduces: List[ArrayReduce] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Module-level numpy discovery
# ---------------------------------------------------------------------------


def numpy_aliases(module: ProjectModule) -> FrozenSet[str]:
    """Local names the module binds to the numpy package (``np``)."""
    aliases: Set[str] = set()
    for node in ast.walk(module.context.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    aliases.add(alias.asname or "numpy")
    return frozenset(aliases)


def numpy_from_imports(module: ProjectModule) -> Dict[str, str]:
    """``from numpy import zeros as z`` -> {"z": "zeros"}."""
    table: Dict[str, str] = {}
    for node in ast.walk(module.context.tree):
        if isinstance(node, ast.ImportFrom) and node.module == "numpy":
            for alias in node.names:
                table[alias.asname or alias.name] = alias.name
    return table


# ---------------------------------------------------------------------------
# The analysis
# ---------------------------------------------------------------------------


class TensorAnalysis:
    """The interprocedural tensor analysis over one project.

    Build once per run with :meth:`build`; the :class:`TensorEvents` in
    :attr:`events` are then shared by every RL30x rule.
    """

    def __init__(self, graph: ImportGraph, callgraph: CallGraph) -> None:
        self.graph = graph
        self.callgraph = callgraph
        self.events = TensorEvents()
        #: module name -> local numpy aliases; absent = module skipped.
        self.np_aliases: Dict[str, FrozenSet[str]] = {}
        #: module name -> from-numpy import table.
        self.np_from: Dict[str, Dict[str, str]] = {}
        #: qualname -> summary return value (generic context, memoized).
        self._returns: Dict[str, ArrayValue] = {}
        self._in_progress: Set[str] = set()
        #: module name -> abstract values of module-level bindings.
        self.module_envs: Dict[str, Dict[str, ArrayValue]] = {}
        self._region_counter = 0

    @classmethod
    def build(cls, graph: ImportGraph, callgraph: CallGraph) -> "TensorAnalysis":
        analysis = cls(graph, callgraph)
        for name, module in graph.modules.items():
            aliases = numpy_aliases(module)
            if aliases:
                analysis.np_aliases[name] = aliases
                analysis.np_from[name] = numpy_from_imports(module)
        for name in sorted(analysis.np_aliases):
            analysis._module_env(name)
        for qualname in sorted(callgraph.functions):
            info = callgraph.functions[qualname]
            if info.module in analysis.np_aliases:
                analysis.summary(qualname, record_events=True)
        return analysis

    def fresh_region(self) -> int:
        self._region_counter += 1
        return self._region_counter

    def _module_env(self, name: str) -> Dict[str, ArrayValue]:
        cached = self.module_envs.get(name)
        if cached is not None:
            return cached
        self.module_envs[name] = {}  # cycle guard
        module = self.graph.modules[name]
        interpreter = _TensorInterpreter(
            self, module, self.callgraph.scopes[name], qualname=None, record_events=True
        )
        top_level = [
            node
            for node in module.context.tree.body
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
        ]
        interpreter.run(top_level)
        self.module_envs[name] = interpreter.env
        return interpreter.env

    def summary(self, qualname: str, record_events: bool = False) -> ArrayValue:
        """The memoized (generic-context) return value of ``qualname``."""
        info = self.callgraph.functions.get(qualname)
        if info is None or info.module not in self.np_aliases:
            return UNKNOWN_ARRAY
        cached = self._returns.get(qualname)
        if cached is not None and not record_events:
            return cached
        if qualname in self._in_progress:
            return UNKNOWN_ARRAY  # recursion: neutral, like the flow pass
        self._in_progress.add(qualname)
        try:
            interpreter = self._interpret_function(info, record_events)
        finally:
            self._in_progress.discard(qualname)
        returns = interpreter.returns if interpreter.saw_return else UNKNOWN_ARRAY
        self._returns[qualname] = returns
        return returns

    def _interpret_function(
        self, info: FunctionInfo, record_events: bool
    ) -> "_TensorInterpreter":
        module = self.graph.modules[info.module]
        scope = self.callgraph.scopes[info.module]
        interpreter = _TensorInterpreter(
            self, module, scope, qualname=info.qualname, record_events=record_events
        )
        interpreter.run(info.node.body)
        return interpreter


# ---------------------------------------------------------------------------
# The interpreter
# ---------------------------------------------------------------------------


class _TensorInterpreter:
    """One flow-sensitive pass over a statement list."""

    def __init__(
        self,
        analysis: TensorAnalysis,
        module: ProjectModule,
        scope: ModuleScope,
        qualname: Optional[str],
        record_events: bool = False,
    ) -> None:
        self.analysis = analysis
        self.module = module
        self.scope = scope
        self.qualname = qualname
        self.record = record_events
        self.aliases = analysis.np_aliases.get(module.name, frozenset())
        self.np_from = analysis.np_from.get(module.name, {})
        self.env: Dict[str, ArrayValue] = {}
        #: Names bound to ``np.random.default_rng(...)`` generators.
        self.generators: Set[str] = set()
        #: region id -> (name it was sunk under, sink lineno, sink desc).
        self.sunk: Dict[int, Tuple[str, int, str]] = {}
        self.returns: ArrayValue = UNKNOWN_ARRAY
        self.saw_return = False

    # -- statement dispatch -------------------------------------------

    def run(self, statements: Sequence[ast.stmt]) -> None:
        for statement in statements:
            self.execute(statement)

    def execute(self, node: ast.stmt) -> None:
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            self._exec_assign(node)
        elif isinstance(node, ast.Return):
            if node.value is not None:
                value = self.eval(node.value)
                self.returns = self.returns.join(value) if self.saw_return else value
                self.saw_return = True
        elif isinstance(node, ast.Expr):
            self.eval(node.value)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            iterable = self.eval(node.iter)
            element = ArrayValue(dtype=iterable.dtype, order=Orderedness.UNKNOWN)
            self._bind_target(node.target, element)
            self._join_branches([list(node.body) + list(node.orelse)])
        elif isinstance(node, ast.While):
            self.eval(node.test)
            self._join_branches([node.body, node.orelse])
        elif isinstance(node, ast.If):
            self.eval(node.test)
            self._join_branches([node.body, node.orelse])
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                value = self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind_target(item.optional_vars, value)
            self.run(node.body)
        elif isinstance(node, ast.Try):
            blocks: List[List[ast.stmt]] = [node.body]
            for handler in node.handlers:
                blocks.append(handler.body)
            if node.orelse:
                blocks.append(node.orelse)
            self._join_branches(blocks)
            self.run(node.finalbody)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            pass  # analyzed via the call graph, not inline
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.env.pop(target.id, None)
        elif isinstance(node, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self.eval(child)

    def _join_branches(self, blocks: Sequence[Sequence[ast.stmt]]) -> None:
        base_env = dict(self.env)
        base_sunk = dict(self.sunk)
        base_generators = set(self.generators)
        merged_env: Optional[Dict[str, ArrayValue]] = None
        merged_sunk = dict(base_sunk)
        merged_generators = set(base_generators)
        for block in blocks:
            self.env = dict(base_env)
            self.sunk = dict(base_sunk)
            self.generators = set(base_generators)
            self.run(block)
            if merged_env is None:
                merged_env = dict(self.env)
            else:
                keys = set(merged_env) | set(self.env)
                merged_env = {
                    key: merged_env[key].join(self.env[key])
                    if key in merged_env and key in self.env
                    else (merged_env.get(key) or self.env[key])
                    for key in keys
                }
            for region, site in self.sunk.items():
                merged_sunk.setdefault(region, site)
            merged_generators |= self.generators
        self.env = merged_env if merged_env is not None else base_env
        self.sunk = merged_sunk
        self.generators = merged_generators

    def _exec_assign(self, node: ast.stmt) -> None:
        if isinstance(node, ast.Assign):
            value = self.eval(node.value)
            for target in node.targets:
                self._bind_target(target, value, rhs=node.value)
        elif isinstance(node, ast.AnnAssign):
            if node.value is None:
                return
            value = self.eval(node.value)
            self._bind_target(node.target, value, rhs=node.value)
        elif isinstance(node, ast.AugAssign):
            value = self.eval(node.value)
            target = node.target
            if isinstance(target, ast.Name):
                old = self.env.get(target.id, UNKNOWN_ARRAY)
                if old.is_array:
                    # ``col += x`` mutates in place: alias + dtype checks.
                    self._check_store_drift(node, old, value, target.id)
                    self._check_alias_mutation(node, target.id, old)
                    self.env[target.id] = ArrayValue(
                        is_array=True,
                        shape=old.shape,
                        dtype=old.dtype,
                        regions=old.regions,
                        order=old.order,
                    )
                else:
                    self.env[target.id] = old.join(value)
            elif isinstance(target, ast.Subscript):
                self._exec_subscript_store(node, target, value)

    def _bind_target(
        self,
        target: ast.expr,
        value: ArrayValue,
        rhs: Optional[ast.expr] = None,
    ) -> None:
        if isinstance(target, ast.Name):
            old = self.env.get(target.id)
            if (
                self.record
                and old is not None
                and old.is_array
                and old.dtype.known
                and old.dtype.is_int
                and value.is_array
                and value.dtype.is_float
            ):
                self.analysis.events.drifts.append(
                    DtypeDrift(
                        module=self.module.name,
                        function=self.qualname,
                        node=rhs if rhs is not None else target,
                        kind="int-rebound-to-float",
                        src=old.dtype,
                        dst=value.dtype,
                        name=target.id,
                    )
                )
            self.env[target.id] = value
            if rhs is not None and _is_default_rng_call(rhs, self.aliases):
                self.generators.add(target.id)
            else:
                self.generators.discard(target.id)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, value, rhs)
        elif isinstance(target, (ast.Tuple, ast.List)):
            if (
                rhs is not None
                and isinstance(rhs, (ast.Tuple, ast.List))
                and len(rhs.elts) == len(target.elts)
            ):
                for element, expr in zip(target.elts, rhs.elts):
                    self._bind_target(element, self.eval(expr), rhs=expr)
            else:
                for element in target.elts:
                    self._bind_target(element, UNKNOWN_ARRAY)
        elif isinstance(target, ast.Subscript):
            self._exec_subscript_store(target, target, value)
        elif isinstance(target, ast.Attribute) and isinstance(target.value, ast.Name):
            self.env[f"{target.value.id}.{target.attr}"] = value

    def _exec_subscript_store(
        self, anchor: ast.AST, target: ast.Subscript, value: ArrayValue
    ) -> None:
        """``a[idx] = v`` / ``a[idx] += v``: mask, dtype and alias checks."""
        base_name = target.value.id if isinstance(target.value, ast.Name) else None
        base = self.eval(target.value)
        index = self.eval(target.slice)
        if base.is_array:
            self._check_mask(target, base, target.slice, index)
            if base_name is not None:
                self._check_store_drift(anchor, base, value, base_name)
                self._check_alias_mutation(anchor, base_name, base)

    def _check_store_drift(
        self, node: ast.AST, column: ArrayValue, value: ArrayValue, name: str
    ) -> None:
        if not self.record:
            return
        if column.dtype.known and column.dtype.is_int and value.dtype.is_float:
            self.analysis.events.drifts.append(
                DtypeDrift(
                    module=self.module.name,
                    function=self.qualname,
                    node=node,
                    kind="store-float-into-int",
                    src=column.dtype,
                    dst=value.dtype,
                    name=name,
                )
            )

    def _check_alias_mutation(
        self, node: ast.AST, name: str, value: ArrayValue
    ) -> None:
        if not self.record:
            return
        lineno = getattr(node, "lineno", 0)
        for region in sorted(value.regions):
            site = self.sunk.get(region)
            if site is None:
                continue
            sunk_as, sink_lineno, sink = site
            if sunk_as == name or lineno <= sink_lineno:
                continue
            self.analysis.events.alias_mutations.append(
                AliasMutation(
                    module=self.module.name,
                    function=self.qualname,
                    node=node,
                    alias=name,
                    sunk_as=sunk_as,
                    sink=sink,
                    sink_lineno=sink_lineno,
                )
            )
            return  # one finding per mutation site

    def _check_mask(
        self,
        node: ast.AST,
        base: ArrayValue,
        index_node: ast.expr,
        index: ArrayValue,
    ) -> None:
        """Boolean-mask indexing with a provably wrong mask length."""
        if not self.record:
            return
        if not (index.is_array and index.dtype.is_bool):
            return
        if dims_incompatible(index.first_dim, base.first_dim):
            self.analysis.events.masks.append(
                MaskMismatch(
                    module=self.module.name,
                    function=self.qualname,
                    node=node,
                    mask_dim=index.first_dim,
                    axis_dim=base.first_dim,
                )
            )

    # -- expression evaluation ----------------------------------------

    def eval(self, node: ast.expr) -> ArrayValue:
        if isinstance(node, ast.Constant):
            return _constant_value(node.value)
        if isinstance(node, ast.Name):
            return self._eval_name(node.id)
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, (ast.Tuple, ast.List)):
            for element in node.elts:
                self.eval(element)
            return ORDERED_SCALAR
        if isinstance(node, ast.Set):
            for element in node.elts:
                self.eval(element)
            return ArrayValue(order=Orderedness.UNORDERED)
        if isinstance(node, ast.Dict):
            for value in node.values:
                if value is not None:
                    self.eval(value)
            return ORDERED_SCALAR
        if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            order = self._bind_generators(node.generators)
            self.eval(node.elt)
            return ArrayValue(order=order)
        if isinstance(node, ast.SetComp):
            self._bind_generators(node.generators)
            self.eval(node.elt)
            return ArrayValue(order=Orderedness.UNORDERED)
        if isinstance(node, ast.DictComp):
            self._bind_generators(node.generators)
            self.eval(node.key)
            self.eval(node.value)
            return ORDERED_SCALAR
        if isinstance(node, ast.BoolOp):
            return join_all(self.eval(value) for value in node.values)
        if isinstance(node, ast.IfExp):
            self.eval(node.test)
            return self.eval(node.body).join(self.eval(node.orelse))
        if isinstance(node, ast.BinOp):
            return self._eval_binop(node)
        if isinstance(node, ast.Compare):
            return self._eval_compare(node)
        if isinstance(node, ast.UnaryOp):
            operand = self.eval(node.operand)
            if isinstance(node.op, ast.Not):
                return scalar(DType.BOOL)
            if operand.is_array:
                # ~mask / -col: elementwise, same shape, fresh storage.
                return ArrayValue(
                    is_array=True,
                    shape=operand.shape,
                    dtype=operand.dtype,
                    regions=frozenset((self.analysis.fresh_region(),)),
                    order=operand.order,
                )
            return operand
        if isinstance(node, ast.Subscript):
            return self._eval_subscript(node)
        if isinstance(node, ast.Slice):
            for part in (node.lower, node.upper, node.step):
                if part is not None:
                    self.eval(part)
            return ORDERED_SCALAR
        if isinstance(node, (ast.JoinedStr, ast.FormattedValue)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self.eval(child)
            return ORDERED_SCALAR
        if isinstance(node, ast.Starred):
            return self.eval(node.value)
        if isinstance(node, (ast.Await, ast.YieldFrom)):
            return self.eval(node.value) if node.value is not None else UNKNOWN_ARRAY
        if isinstance(node, ast.Yield):
            if node.value is not None:
                self.eval(node.value)
            return UNKNOWN_ARRAY
        return UNKNOWN_ARRAY

    def _eval_name(self, name: str) -> ArrayValue:
        if name in self.env:
            return self.env[name]
        module_env = self.analysis.module_envs.get(self.module.name)
        if module_env and name in module_env:
            return module_env[name]
        return UNKNOWN_ARRAY

    def _eval_attribute(self, node: ast.Attribute) -> ArrayValue:
        base = self.eval(node.value)
        if base.is_array and node.attr == "T":
            shape = tuple(reversed(base.shape)) if base.shape else None
            return ArrayValue(
                is_array=True,
                shape=shape,
                dtype=base.dtype,
                regions=base.regions,  # a view
                order=base.order,
            )
        if isinstance(node.value, ast.Name):
            key = f"{node.value.id}.{node.attr}"
            if key in self.env:
                return self.env[key]
        return UNKNOWN_ARRAY

    def _bind_generators(
        self, generators: Sequence[ast.comprehension]
    ) -> Orderedness:
        order = Orderedness.ORDERED
        for generator in generators:
            iterable = self.eval(generator.iter)
            order = order.join(iterable.order)
            self._bind_target(
                generator.target, ArrayValue(dtype=iterable.dtype)
            )
            for condition in generator.ifs:
                self.eval(condition)
        return order

    # -- operators ----------------------------------------------------

    def _eval_binop(self, node: ast.BinOp) -> ArrayValue:
        left = self.eval(node.left)
        right = self.eval(node.right)
        if not isinstance(node.op, _BROADCAST_OPS):
            return UNKNOWN_ARRAY
        if not (left.is_array or right.is_array):
            if left.dtype.known and right.dtype.known:
                out = left.dtype.join(right.dtype)
                if isinstance(node.op, ast.Div):
                    out = out.join(DType.FLOAT64)
                return scalar(out)
            return ArrayValue(order=left.order.join(right.order))
        self._check_broadcast(node, left, right, _op_symbol(node.op))
        return self._broadcast_result(left, right, division=isinstance(node.op, ast.Div))

    def _eval_compare(self, node: ast.Compare) -> ArrayValue:
        left = self.eval(node.left)
        results = [left] + [self.eval(comp) for comp in node.comparators]
        any_array = any(value.is_array for value in results)
        if len(results) == 2:
            lhs, rhs = results
            if any_array:
                self._check_broadcast(node, lhs, rhs, _op_symbol(node.ops[0]))
            if (
                self.record
                and isinstance(node.ops[0], (ast.Eq, ast.NotEq))
                and lhs.dtype.known
                and rhs.dtype.known
                and (
                    (lhs.dtype.is_int and rhs.dtype.is_float)
                    or (lhs.dtype.is_float and rhs.dtype.is_int)
                )
                and (lhs.is_array or rhs.is_array)
            ):
                self.analysis.events.drifts.append(
                    DtypeDrift(
                        module=self.module.name,
                        function=self.qualname,
                        node=node,
                        kind="cross-dtype-compare",
                        src=lhs.dtype,
                        dst=rhs.dtype,
                    )
                )
        if any_array:
            result = self._broadcast_result(*results[:2])
            return ArrayValue(
                is_array=True,
                shape=result.shape,
                dtype=DType.BOOL,
                regions=frozenset((self.analysis.fresh_region(),)),
                order=result.order,
            )
        return scalar(DType.BOOL)

    def _check_broadcast(
        self, node: ast.AST, left: ArrayValue, right: ArrayValue, op: str
    ) -> None:
        if not self.record:
            return
        if not (left.is_array and right.is_array):
            return
        if dims_incompatible(left.last_dim, right.last_dim):
            self.analysis.events.broadcasts.append(
                BroadcastMismatch(
                    module=self.module.name,
                    function=self.qualname,
                    node=node,
                    left=left.last_dim,
                    right=right.last_dim,
                    op=op,
                )
            )

    def _broadcast_result(
        self, left: ArrayValue, right: ArrayValue, division: bool = False
    ) -> ArrayValue:
        """Elementwise result of an array op: fresh storage, promoted dtype."""
        array_side = left if left.is_array else right
        shape = array_side.shape
        if (
            left.is_array
            and right.is_array
            and left.shape is not None
            and right.shape is not None
            and len(left.shape) == len(right.shape)
        ):
            shape = tuple(
                broadcast_dims(a, b) for a, b in zip(left.shape, right.shape)
            )
        dtype = left.dtype.join(right.dtype)
        if division and not dtype.is_float:
            dtype = DType.FLOAT64  # true division always yields floats
        return ArrayValue(
            is_array=True,
            shape=shape,
            dtype=dtype,
            regions=frozenset((self.analysis.fresh_region(),)),
            order=left.order.join(right.order),
        )

    # -- subscripts ---------------------------------------------------

    def _eval_subscript(self, node: ast.Subscript) -> ArrayValue:
        base = self.eval(node.value)
        index_node = node.slice
        if not base.is_array:
            self.eval(index_node)
            return UNKNOWN_ARRAY
        if isinstance(index_node, ast.Slice):
            for part in (index_node.lower, index_node.upper, index_node.step):
                if part is not None:
                    self.eval(part)
            # Basic slicing returns a *view*: shared regions, first dim
            # generally shortened (unknown), later dims preserved.
            shape = (
                (UNKNOWN_DIM,) + tuple(base.shape[1:]) if base.shape else None
            )
            return ArrayValue(
                is_array=True,
                shape=shape,
                dtype=base.dtype,
                regions=base.regions,
                order=base.order,
            )
        index = self.eval(index_node)
        if index.is_array and index.dtype.is_bool:
            # Boolean masking: a copy of unknown length.
            self._check_mask(node, base, index_node, index)
            return ArrayValue(
                is_array=True,
                shape=(UNKNOWN_DIM,),
                dtype=base.dtype,
                regions=frozenset((self.analysis.fresh_region(),)),
                order=base.order,
            )
        if index.is_array:
            # Fancy indexing: a copy shaped like the index.
            return ArrayValue(
                is_array=True,
                shape=index.shape,
                dtype=base.dtype,
                regions=frozenset((self.analysis.fresh_region(),)),
                order=base.order,
            )
        if base.shape is not None and len(base.shape) > 1:
            return ArrayValue(
                is_array=True,
                shape=tuple(base.shape[1:]),
                dtype=base.dtype,
                regions=base.regions,  # a row view
                order=base.order,
            )
        return scalar(base.dtype)

    # -- calls --------------------------------------------------------

    def _eval_call(self, node: ast.Call) -> ArrayValue:
        func = node.func
        self._check_sinks(node)

        np_name = self._numpy_func(func)
        if np_name is not None:
            return self._eval_numpy_call(node, np_name)

        if isinstance(func, ast.Attribute):
            result = self._eval_method_call(node, func)
            if result is not None:
                return result

        if isinstance(func, ast.Name):
            result = self._eval_builtin_call(node, func.id)
            if result is not None:
                return result

        for arg in node.args:
            self.eval(arg)
        for kw in node.keywords:
            self.eval(kw.value)

        resolved = resolve_reference(
            func, self.module, self.scope, self.analysis.graph, self.analysis.callgraph.scopes
        )
        if resolved is not None:
            return self.analysis.summary(resolved)
        return UNKNOWN_ARRAY

    def _numpy_func(self, func: ast.expr) -> Optional[str]:
        """``np.zeros`` -> "zeros"; ``np.add.reduceat`` -> "add.reduceat";
        a bare from-numpy import -> its original name."""
        if isinstance(func, ast.Attribute):
            value = func.value
            if isinstance(value, ast.Name) and value.id in self.aliases:
                return func.attr
            if (
                isinstance(value, ast.Attribute)
                and isinstance(value.value, ast.Name)
                and value.value.id in self.aliases
            ):
                return f"{value.attr}.{func.attr}"
        if isinstance(func, ast.Name) and func.id in self.np_from:
            return self.np_from[func.id]
        return None

    def _eval_numpy_call(self, node: ast.Call, name: str) -> ArrayValue:
        arg_values = [self.eval(arg) for arg in node.args]
        kwargs = {kw.arg: kw.value for kw in node.keywords if kw.arg is not None}
        for kw in node.keywords:
            self.eval(kw.value)
        first = arg_values[0] if arg_values else UNKNOWN_ARRAY

        if name in NP_SHAPE_CREATORS:
            dtype = self._dtype_kwarg(kwargs)
            if dtype is None:
                dtype = NP_SHAPE_CREATORS[name]
                if name == "full" and len(node.args) > 1:
                    fill = arg_values[1]
                    dtype = fill.dtype if fill.dtype.known else DType.TOP
            shape = self._shape_from_node(node.args[0]) if node.args else None
            return self._fresh_array(shape, dtype)
        if name in NP_RANGE_CREATORS:
            dtype = self._dtype_kwarg(kwargs)
            if dtype is None:
                dtype = NP_RANGE_CREATORS[name]
                if name == "arange" and any(
                    value.dtype.is_float for value in arg_values
                ):
                    dtype = DType.FLOAT64
            dim = (
                _dim_from_node(node.args[0])
                if name == "arange" and len(node.args) == 1
                else UNKNOWN_DIM
            )
            return self._fresh_array((dim,), dtype)
        if name in NP_WRAP_CREATORS:
            dtype = self._dtype_kwarg(kwargs)
            if dtype is None:
                dtype = first.dtype if first.is_array else DType.TOP
            shape = first.shape if first.is_array else (UNKNOWN_DIM,)
            regions = (
                first.regions
                if name == "asarray" and first.is_array
                else frozenset((self.analysis.fresh_region(),))
            )
            return ArrayValue(
                is_array=True,
                shape=shape,
                dtype=dtype,
                regions=regions,
                order=first.order,
            )
        if name in ("concatenate", "stack", "hstack", "vstack"):
            parts: List[ArrayValue] = []
            if node.args and isinstance(node.args[0], (ast.Tuple, ast.List)):
                parts = [self.eval(part) for part in node.args[0].elts]
            arrays = [part for part in parts if part.is_array]
            dtype = (
                join_all(arrays).dtype
                if arrays and len(arrays) == len(parts)
                else DType.TOP
            )
            order = join_all(parts).order if parts else Orderedness.UNKNOWN
            return ArrayValue(
                is_array=True,
                shape=(UNKNOWN_DIM,),
                dtype=dtype,
                regions=frozenset((self.analysis.fresh_region(),)),
                order=order,
            )
        if name == "cumsum" and first.is_array:
            return self._fresh_array(first.shape, first.dtype, order=first.order)
        if name in NP_REDUCTIONS:
            self._check_reduce(node, name, first)
            dtype = (
                DType.FLOAT64
                if name in ("mean", "std", "var", "nanmean")
                else (first.dtype if first.dtype.known else DType.TOP)
            )
            return scalar(dtype)
        if name in NP_SAFE_REDUCTIONS:
            if name in ("argmin", "argmax", "count_nonzero"):
                return scalar(DType.INT64)
            if name in ("any", "all"):
                return scalar(DType.BOOL)
            return scalar(first.dtype if first.dtype.known else DType.TOP)
        if name in NP_SORT_FUNCS:
            self._check_sort(node, f"np.{name}", kwargs)
            if name == "argsort" or name == "lexsort":
                return self._fresh_array(
                    first.shape if first.is_array else None, DType.INT64
                )
            return self._fresh_array(
                first.shape if first.is_array else None,
                first.dtype,
                order=Orderedness.ORDERED,
            )
        if name == "unique":
            if self.record and first.order is Orderedness.UNORDERED:
                if any(key in kwargs for key in ("return_index", "return_inverse")):
                    self.analysis.events.unique_orders.append(
                        UniqueOrder(
                            module=self.module.name,
                            function=self.qualname,
                            node=node,
                        )
                    )
            return self._fresh_array(
                (UNKNOWN_DIM,),
                first.dtype if first.is_array else DType.TOP,
                order=Orderedness.ORDERED,  # np.unique sorts its output
            )
        if name in NP_ELEMENTWISE:
            arrays = [value for value in arg_values if value.is_array]
            if not arrays:
                return UNKNOWN_ARRAY
            base = arrays[-1] if name == "where" else arrays[0]
            dtype = join_all(arrays).dtype if name != "logical_not" else DType.BOOL
            if name in ("logical_and", "logical_or", "logical_not"):
                dtype = DType.BOOL
            return self._fresh_array(base.shape, dtype, order=base.order)
        if "." in name:
            host, method = name.split(".", 1)
            if host in NP_UFUNC_HOSTS:
                if method == "reduceat":
                    return self._fresh_array(
                        (UNKNOWN_DIM,), first.dtype if first.is_array else DType.TOP
                    )
                if method == "reduce":
                    self._check_reduce(node, name, first)
                    return scalar(first.dtype if first.dtype.known else DType.TOP)
                if method == "at":
                    return UNKNOWN_ARRAY
        if name == "random.default_rng":
            return UNKNOWN_ARRAY
        return UNKNOWN_ARRAY

    def _eval_method_call(
        self, node: ast.Call, func: ast.Attribute
    ) -> Optional[ArrayValue]:
        receiver = self.eval(func.value)
        method = func.attr
        receiver_name = (
            func.value.id if isinstance(func.value, ast.Name) else None
        )
        arg_values = [self.eval(arg) for arg in node.args]
        kwargs = {kw.arg: kw.value for kw in node.keywords if kw.arg is not None}
        for kw in node.keywords:
            self.eval(kw.value)

        if receiver_name is not None and receiver_name in self.generators:
            draw = NP_RNG_DRAWS.get(method)
            if draw is not None:
                size_node = kwargs.get("size")
                if size_node is None:
                    position = _RNG_SIZE_POSITION.get(method)
                    if position is not None and len(node.args) > position:
                        size_node = node.args[position]
                if size_node is None:
                    return scalar(draw)
                return self._fresh_array(self._shape_from_node(size_node), draw)

        if receiver.is_array:
            if method == "astype":
                target = (
                    _dtype_from_node(node.args[0], self.aliases)
                    if node.args
                    else None
                )
                dst = target if target is not None else DType.TOP
                if (
                    self.record
                    and target is not None
                    and narrows(receiver.dtype, dst)
                ):
                    self.analysis.events.drifts.append(
                        DtypeDrift(
                            module=self.module.name,
                            function=self.qualname,
                            node=node,
                            kind="narrowing-astype",
                            src=receiver.dtype,
                            dst=dst,
                            name=receiver_name or "",
                        )
                    )
                return self._fresh_array(receiver.shape, dst, order=receiver.order)
            if method in NP_VIEW_METHODS:
                return ArrayValue(
                    is_array=True,
                    shape=None,  # reshape/ravel change the shape
                    dtype=receiver.dtype,
                    regions=receiver.regions,
                    order=receiver.order,
                )
            if method in NP_COPY_METHODS:
                if method == "tolist":
                    return ArrayValue(dtype=receiver.dtype, order=receiver.order)
                return self._fresh_array(
                    receiver.shape, receiver.dtype, order=receiver.order
                )
            if method in ("sort", "argsort"):
                self._check_sort(node, f".{method}()", kwargs)
                if method == "argsort":
                    return self._fresh_array(receiver.shape, DType.INT64)
                return UNKNOWN_ARRAY  # in-place sort returns None
            if method in ("sum", "prod", "mean", "std", "var"):
                self._check_reduce(node, f".{method}()", receiver)
                dtype = (
                    DType.FLOAT64
                    if method in ("mean", "std", "var")
                    else receiver.dtype
                )
                return scalar(dtype if dtype.known else DType.TOP)
            if method in ("min", "max"):
                return scalar(receiver.dtype if receiver.dtype.known else DType.TOP)
            if method in ("any", "all"):
                return scalar(DType.BOOL)
        return None

    def _eval_builtin_call(self, node: ast.Call, name: str) -> Optional[ArrayValue]:
        arg_values = [self.eval(arg) for arg in node.args]
        for kw in node.keywords:
            self.eval(kw.value)
        first = arg_values[0] if arg_values else UNKNOWN_ARRAY
        if name == "sorted":
            return ArrayValue(dtype=first.dtype, order=Orderedness.ORDERED)
        if name in ("set", "frozenset"):
            return ArrayValue(dtype=first.dtype, order=Orderedness.UNORDERED)
        if name in _PRESERVING_CALLS:
            return ArrayValue(
                dtype=first.dtype,
                order=first.order if arg_values else Orderedness.ORDERED,
            )
        if name == "len":
            return scalar(DType.INT64)
        if name == "int":
            return scalar(DType.INT64)
        if name == "float":
            return scalar(DType.FLOAT64)
        if name == "bool":
            return scalar(DType.BOOL)
        if name in ("abs", "round", "sum", "min", "max"):
            return scalar(first.dtype if first.dtype.known else DType.TOP)
        return None

    # -- event helpers ------------------------------------------------

    def _check_sort(
        self, node: ast.Call, func: str, kwargs: Dict[str, ast.expr]
    ) -> None:
        if not self.record:
            return
        kind = kwargs.get("kind")
        if (
            kind is not None
            and isinstance(kind, ast.Constant)
            and kind.value in STABLE_SORT_KINDS
        ):
            return
        self.analysis.events.unstable_sorts.append(
            UnstableSort(
                module=self.module.name,
                function=self.qualname,
                node=node,
                func=func,
            )
        )

    def _check_reduce(self, node: ast.Call, reducer: str, operand: ArrayValue) -> None:
        if not self.record:
            return
        if operand.order is not Orderedness.UNORDERED:
            return
        if not operand.dtype.is_float:
            return  # integer reductions are exact in any order
        self.analysis.events.unordered_reduces.append(
            ArrayReduce(
                module=self.module.name,
                function=self.qualname,
                node=node,
                reducer=reducer,
            )
        )

    def _check_sinks(self, node: ast.Call) -> None:
        """Record regions whose bytes reach a fingerprint/snapshot sink."""
        func = node.func
        sink: Optional[str] = None
        sink_args: Sequence[ast.expr] = node.args
        if isinstance(func, ast.Name) and func.id in SINK_FUNCS:
            sink = func.id
        elif isinstance(func, ast.Attribute):
            if func.attr in SINK_FUNCS:
                sink = func.attr
            elif (
                func.attr in SINK_RECORDER_METHODS
                and isinstance(func.value, ast.Name)
                and func.value.id in SINK_RECORDER_NAMES
            ):
                sink = f"{func.value.id}.{func.attr}"
            elif func.attr in SINK_ARRAY_METHODS:
                sink = f".{func.attr}()"
                sink_args = [func.value]
        if sink is None:
            return
        lineno = getattr(node, "lineno", 0)
        for arg in sink_args:
            value = self.eval(arg)
            if not value.regions:
                continue
            name = arg.id if isinstance(arg, ast.Name) else "<expr>"
            for region in value.regions:
                self.sunk.setdefault(region, (name, lineno, sink))

    # -- small builders -----------------------------------------------

    def _fresh_array(
        self,
        shape: Optional[Tuple[Dim, ...]],
        dtype: DType,
        order: Orderedness = Orderedness.ORDERED,
    ) -> ArrayValue:
        return ArrayValue(
            is_array=True,
            shape=shape,
            dtype=dtype,
            regions=frozenset((self.analysis.fresh_region(),)),
            order=order,
        )

    def _dtype_kwarg(self, kwargs: Dict[str, ast.expr]) -> Optional[DType]:
        node = kwargs.get("dtype")
        if node is None:
            return None
        return _dtype_from_node(node, self.aliases)

    def _shape_from_node(self, node: ast.expr) -> Optional[Tuple[Dim, ...]]:
        if isinstance(node, (ast.Tuple, ast.List)):
            return tuple(_dim_from_node(element) for element in node.elts)
        return (_dim_from_node(node),)


# ---------------------------------------------------------------------------
# Syntactic helpers
# ---------------------------------------------------------------------------


def _constant_value(value: object) -> ArrayValue:
    if isinstance(value, bool):
        return scalar(DType.BOOL)
    if isinstance(value, int):
        return scalar(DType.INT64)
    if isinstance(value, float):
        return scalar(DType.FLOAT64)
    return ORDERED_SCALAR


def _dim_from_node(node: ast.expr) -> Dim:
    """The symbolic/literal axis length named by a size expression."""
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return Dim(size=node.value)
    if isinstance(node, ast.Name):
        return Dim(name=node.id)
    if isinstance(node, ast.Attribute):
        parts: List[str] = [node.attr]
        value = node.value
        while isinstance(value, ast.Attribute):
            parts.append(value.attr)
            value = value.value
        if isinstance(value, ast.Name):
            parts.append(value.id)
            return Dim(name=".".join(reversed(parts)))
    return UNKNOWN_DIM


def _dtype_from_node(node: ast.expr, aliases: FrozenSet[str]) -> Optional[DType]:
    """Resolve a dtype designator expression to a lattice point."""
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
        if node.value.id in aliases:
            return DTYPE_NAMES.get(node.attr)
        return None
    if isinstance(node, ast.Name):
        return DTYPE_NAMES.get(node.id)
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return DTYPE_NAMES.get(node.value)
    return None


def _op_symbol(op: ast.AST) -> str:
    symbols = {
        ast.Add: "+",
        ast.Sub: "-",
        ast.Mult: "*",
        ast.Div: "/",
        ast.FloorDiv: "//",
        ast.Mod: "%",
        ast.Pow: "**",
        ast.BitAnd: "&",
        ast.BitOr: "|",
        ast.BitXor: "^",
        ast.LShift: "<<",
        ast.RShift: ">>",
        ast.Eq: "==",
        ast.NotEq: "!=",
        ast.Lt: "<",
        ast.LtE: "<=",
        ast.Gt: ">",
        ast.GtE: ">=",
    }
    return symbols.get(type(op), "?")


def _is_default_rng_call(node: ast.expr, aliases: FrozenSet[str]) -> bool:
    """``np.random.default_rng(...)``: the value is a numpy Generator."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    return (
        isinstance(func, ast.Attribute)
        and func.attr == "default_rng"
        and isinstance(func.value, ast.Attribute)
        and func.value.attr == "random"
        and isinstance(func.value.value, ast.Name)
        and func.value.value.id in aliases
    )
