"""Shared AST dataflow helpers for the project rules (RL102-RL105).

These are deliberately syntactic approximations: each helper answers one
narrow question ("is this expression statically a set?", "which
module-level names does this function mutate?", "does this value escape
the function?") precisely enough for a conservative lint, without
attempting real abstract interpretation.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.rules import _GLOBAL_DRAWS

#: Attribute calls that draw from (or hand out) an RNG stream.  Includes
#: the numpy ``Generator`` draw methods the columnar engine uses
#: (``integers``, ``standard_normal``, ``permutation``), so flow rules
#: treat vectorized draws exactly like scalar ones.
RNG_DRAW_ATTRS = (
    frozenset(_GLOBAL_DRAWS)
    | {"stream", "spawn"}
    | {"integers", "standard_normal", "permutation", "default_rng"}
)

#: Method names that mutate their receiver in place.
MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
        "setdefault",
        "appendleft",
        "extendleft",
        "sort",
        "reverse",
    }
)

#: Constructors whose result is a mutable container.
MUTABLE_CONSTRUCTORS = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter", "OrderedDict"}
)

#: Reductions whose result depends on iteration order for floats.
ORDER_SENSITIVE_REDUCERS = frozenset({"sum", "fsum", "reduce", "join", "accumulate"})


def is_mutable_literal(node: ast.AST) -> bool:
    """True for list/dict/set literals, comprehensions, and mutable
    constructor calls."""
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in MUTABLE_CONSTRUCTORS:
            return True
        if isinstance(func, ast.Attribute) and func.attr in MUTABLE_CONSTRUCTORS:
            return True
    return False


def mutable_module_globals(tree: ast.Module) -> Dict[str, ast.AST]:
    """Module-level names bound to mutable containers, with their nodes."""
    out: Dict[str, ast.AST] = {}
    for node in tree.body:
        if isinstance(node, ast.Assign):
            if is_mutable_literal(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        out[target.id] = node
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if is_mutable_literal(node.value) and isinstance(node.target, ast.Name):
                out[node.target.id] = node
    return out


def mutated_names(func: ast.AST) -> Iterator[Tuple[str, ast.AST]]:
    """Names the function mutates: mutator-method calls, subscript or
    augmented assignment, and rebinding through ``global``.

    Yields ``(name, offending node)`` pairs; local shadowing is the
    caller's problem (pair this with :func:`local_bindings`).
    """
    declared_global: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
    for node in ast.walk(func):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            receiver = node.func.value
            if isinstance(receiver, ast.Name) and node.func.attr in MUTATOR_METHODS:
                yield receiver.id, node
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Subscript) and isinstance(
                    target.value, ast.Name
                ):
                    yield target.value.id, node
                elif (
                    isinstance(node, ast.AugAssign)
                    and isinstance(target, ast.Name)
                    and target.id in declared_global
                ):
                    yield target.id, node
                elif (
                    isinstance(node, ast.Assign)
                    and isinstance(target, ast.Name)
                    and target.id in declared_global
                ):
                    yield target.id, node
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript) and isinstance(
                    target.value, ast.Name
                ):
                    yield target.value.id, node


def local_bindings(func: ast.AST) -> Set[str]:
    """Names bound locally inside ``func`` (params, assignments, loops,
    with-targets, comprehension targets, nested defs)."""
    out: Set[str] = set()
    args = getattr(func, "args", None)
    if args is not None:
        for arg in (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        ):
            out.add(arg.arg)
    declared_global: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if node is not func:
                out.add(node.name)
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                for name_node in ast.walk(target):
                    if isinstance(name_node, ast.Name) and isinstance(
                        name_node.ctx, ast.Store
                    ):
                        out.add(name_node.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for name_node in ast.walk(node.target):
                if isinstance(name_node, ast.Name):
                    out.add(name_node.id)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    for name_node in ast.walk(item.optional_vars):
                        if isinstance(name_node, ast.Name):
                            out.add(name_node.id)
        elif isinstance(node, ast.comprehension):
            for name_node in ast.walk(node.target):
                if isinstance(name_node, ast.Name):
                    out.add(name_node.id)
    return out - declared_global


def setish_names(scope: ast.AST, module_tree: Optional[ast.Module] = None) -> Set[str]:
    """Names statically known to hold a ``set``/``frozenset`` value:
    locals of ``scope`` plus (optionally) module-level globals.

    A name only qualifies when *every* assignment to it is setish: the
    common ``seen = sorted(seen)`` rebinding turns the value back into a
    deterministic list, so names with any non-setish assignment are
    demoted (to a fixed point, since demoting one name can falsify
    ``s = s | t`` for another)."""
    assignments: List[Tuple[str, ast.AST]] = []
    sources: List[ast.AST] = [scope]
    if module_tree is not None:
        sources.append(module_tree)
    for source in sources:
        nodes = source.body if isinstance(source, ast.Module) else list(ast.walk(source))
        for node in nodes:
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                value = node.value
                if value is None:
                    continue
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if isinstance(target, ast.Name):
                        assignments.append((target.id, value))
    out: Set[str] = {
        name
        for name, value in assignments
        if is_setish_expr(value, frozenset())
    }
    changed = True
    while changed:
        changed = False
        known = frozenset(out)
        for name, value in assignments:
            if name in out and not is_setish_expr(value, known):
                out.discard(name)
                changed = True
    return out


def is_setish_expr(node: ast.AST, known_sets: frozenset) -> bool:
    """True when ``node`` statically evaluates to an unordered set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name) and node.id in known_sets:
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        # s.union(...), s.intersection(...), s.difference(...) on a known set
        if (
            isinstance(func, ast.Attribute)
            and func.attr in ("union", "intersection", "difference", "symmetric_difference")
            and is_setish_expr(func.value, known_sets)
        ):
            return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return is_setish_expr(node.left, known_sets) or is_setish_expr(
            node.right, known_sets
        )
    return False


def draws_rng(node: ast.AST) -> bool:
    """True when the subtree contains a call that draws from an RNG
    stream (``rng.random()``, ``registry.stream(...)``, ...)."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
            if sub.func.attr in RNG_DRAW_ATTRS:
                return True
    return False


def unseeded_random_calls(tree: ast.AST) -> List[ast.Call]:
    """Every ``random.Random()`` / ``Random()`` call with no arguments.

    An argument-free ``Random()`` seeds itself from OS entropy -- there
    is no way to replay it.
    """
    aliases = {"random"}
    from_names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random":
                    aliases.add(alias.asname or alias.name)
        elif isinstance(node, ast.ImportFrom) and node.module == "random":
            for alias in node.names:
                if alias.name == "Random":
                    from_names.add(alias.asname or alias.name)
    out: List[ast.Call] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call) or node.args or node.keywords:
            continue
        func = node.func
        if isinstance(func, ast.Attribute):
            if (
                func.attr == "Random"
                and isinstance(func.value, ast.Name)
                and func.value.id in aliases
            ):
                out.append(node)
        elif isinstance(func, ast.Name) and func.id in from_names:
            out.append(node)
    return out


def escaping_expressions(func: ast.AST) -> List[ast.AST]:
    """Expressions whose value escapes ``func``: returned, yielded,
    passed as a call argument, or stored on an attribute/subscript/
    module global.  Locals that are later returned or passed escape too
    (one level of assignment is followed)."""
    escaping: List[ast.AST] = []
    escaping_locals: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, (ast.Return, ast.Yield)) and node.value is not None:
            escaping.append(node.value)
            if isinstance(node.value, ast.Name):
                escaping_locals.add(node.value.id)
        elif isinstance(node, ast.Call):
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                escaping.append(arg)
                if isinstance(arg, ast.Name):
                    escaping_locals.add(arg.id)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    escaping.append(node.value)
                    if isinstance(node.value, ast.Name):
                        escaping_locals.add(node.value.id)
    # Second pass: assignments whose target later escapes.
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id in escaping_locals:
                    escaping.append(node.value)
    return escaping
