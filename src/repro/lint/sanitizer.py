"""Runtime determinism sanitizer: replay a simulation and diff the traces.

The static rules in :mod:`repro.lint.rules` catch the *sources* of
nondeterminism they know about; this module catches the symptom directly.
A :class:`DeterminismSanitizer` executes the same experiment several
times from the same seed, captures each run's :class:`~repro.dca.tracing.TraceLog`
event stream and final metrics, and reports the **first diverging event**
-- the exact simulated time and payload where replay broke, which is
usually within a few events of the offending draw.

Example:
    >>> from repro.core import IterativeRedundancy
    >>> from repro.dca import DcaConfig
    >>> from repro.lint.sanitizer import sanitize_dca
    >>> report = sanitize_dca(DcaConfig(
    ...     strategy=IterativeRedundancy(2), tasks=20, nodes=10, seed=3))
    >>> report.ok
    True
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any, Callable, List, Mapping, Optional, Sequence, Tuple

from repro.dca.config import DcaConfig
from repro.dca.report import DcaReport
from repro.dca.simulation import DcaSimulation
from repro.dca.tracing import DECIDE, TraceEvent, TraceLog, instrument_server
from repro.grid.run import GridConfig, run_grid
from repro.mapreduce.engine import MapReduceJob, run_mapreduce

#: One run's observable outcome: the trace stream and the final metrics.
RunCapture = Tuple[Sequence[TraceEvent], Mapping[str, Any]]
Runner = Callable[[], RunCapture]


class DeterminismError(AssertionError):
    """Raised by :meth:`SanitizerReport.raise_if_diverged` on divergence."""


def canonical_event(event: TraceEvent) -> str:
    """A stable, byte-comparable rendering of one trace event."""
    detail = ",".join(f"{key}={event.detail[key]!r}" for key in sorted(event.detail))
    return f"t={event.time!r} {event.kind} task={event.task_id} [{detail}]"


def trace_fingerprint(events: Sequence[TraceEvent]) -> str:
    """Canonical text for a whole stream (byte-identical iff streams are)."""
    return "\n".join(canonical_event(event) for event in events)


@dataclass(frozen=True)
class Divergence:
    """Where two supposedly identical runs first disagreed.

    Attributes:
        kind: ``"event"`` (payload mismatch at ``index``), ``"length"``
            (one stream is a strict prefix of the other), or ``"metric"``
            (identical traces but different final metrics).
        index: Index of the first diverging event (-1 for metric kind).
        expected: Canonical rendering from the reference run.
        observed: Canonical rendering from the diverging run.
    """

    kind: str
    index: int
    expected: str
    observed: str

    def describe(self) -> str:
        if self.kind == "metric":
            return f"final metrics diverged: expected {self.expected}, observed {self.observed}"
        if self.kind == "length":
            return (
                f"trace streams diverged at event #{self.index}: "
                f"one run ended, the other recorded {self.observed}"
            )
        return (
            f"first divergence at trace event #{self.index}: "
            f"expected {self.expected}, observed {self.observed}"
        )


@dataclass
class SanitizerReport:
    """Outcome of a determinism check."""

    ok: bool
    runs: int
    events_compared: int
    divergence: Optional[Divergence] = None

    def message(self) -> str:
        if self.ok:
            return (
                f"deterministic: {self.runs} runs produced identical "
                f"{self.events_compared}-event traces and metrics"
            )
        assert self.divergence is not None
        return f"NONDETERMINISM after {self.runs} runs: {self.divergence.describe()}"

    def raise_if_diverged(self) -> None:
        if not self.ok:
            raise DeterminismError(self.message())


def diff_captures(reference: RunCapture, observed: RunCapture) -> Optional[Divergence]:
    """First divergence between two run captures, or ``None`` if identical."""
    ref_events, ref_metrics = reference
    obs_events, obs_metrics = observed
    for index, (expected, got) in enumerate(zip(ref_events, obs_events)):
        if expected != got:
            return Divergence(
                kind="event",
                index=index,
                expected=canonical_event(expected),
                observed=canonical_event(got),
            )
    if len(ref_events) != len(obs_events):
        index = min(len(ref_events), len(obs_events))
        longer = ref_events if len(ref_events) > len(obs_events) else obs_events
        return Divergence(
            kind="length",
            index=index,
            expected=f"{len(ref_events)} events",
            observed=canonical_event(longer[index]),
        )
    if dict(ref_metrics) != dict(obs_metrics):
        changed = sorted(
            key
            for key in set(ref_metrics) | set(obs_metrics)
            if ref_metrics.get(key) != obs_metrics.get(key)
        )
        return Divergence(
            kind="metric",
            index=-1,
            expected=repr({key: ref_metrics.get(key) for key in changed}),
            observed=repr({key: obs_metrics.get(key) for key in changed}),
        )
    return None


class DeterminismSanitizer:
    """Replays a runner and diffs every run against the first.

    Args:
        runner: Zero-argument callable executing one *fresh* run and
            returning ``(trace events, final metrics)``.  The runner must
            rebuild all state per call -- the sanitizer cannot detect
            state smuggled between runs through shared objects.
        runs: Total executions (>= 2).
    """

    def __init__(self, runner: Runner, *, runs: int = 2) -> None:
        if runs < 2:
            raise ValueError(f"need at least 2 runs to compare, got {runs}")
        self.runner = runner
        self.runs = runs

    def check(self) -> SanitizerReport:
        reference = self.runner()
        for _ in range(self.runs - 1):
            observed = self.runner()
            divergence = diff_captures(reference, observed)
            if divergence is not None:
                return SanitizerReport(
                    ok=False,
                    runs=self.runs,
                    events_compared=divergence.index if divergence.index >= 0 else len(reference[0]),
                    divergence=divergence,
                )
        return SanitizerReport(ok=True, runs=self.runs, events_compared=len(reference[0]))


def dca_runner(config: DcaConfig, *, trace_capacity: Optional[int] = None) -> Runner:
    """A :class:`DeterminismSanitizer` runner for one DCA configuration.

    The config (including its strategy, which may carry reputation state)
    is deep-copied per run so every execution starts from scratch.
    """

    def run() -> RunCapture:
        sim = DcaSimulation(copy.deepcopy(config))
        log = instrument_server(sim.server, TraceLog(capacity=trace_capacity))
        report = sim.run()
        events: List[TraceEvent] = list(log)
        return events, report.as_dict()

    return run


def sanitize_dca(
    config: DcaConfig,
    *,
    runs: int = 2,
    trace_capacity: Optional[int] = None,
) -> SanitizerReport:
    """Run a DCA simulation ``runs`` times and diff traces and metrics."""
    sanitizer = DeterminismSanitizer(dca_runner(config, trace_capacity=trace_capacity), runs=runs)
    return sanitizer.check()


def _record_events(report: DcaReport) -> List[TraceEvent]:
    """Synthetic DECIDE events from a report's per-task records.

    The grid and MapReduce substrates drive their simulations internally,
    so there is no server to instrument; the per-task records carry
    enough of the outcome (value, cost, timing) that byte-comparing them
    as trace events catches any replay divergence in decision, ordering,
    scheduling, or timing.
    """
    return [
        TraceEvent(
            time=record.turnaround,
            kind=DECIDE,
            task_id=record.task_id,
            detail={
                "value": record.value,
                "correct": record.correct,
                "jobs_used": record.jobs_used,
                "waves": record.waves,
                "response_time": record.response_time,
            },
        )
        for record in report.records
    ]


def grid_runner(config: GridConfig) -> Runner:
    """A sanitizer runner for one grid configuration.

    The config (strategy included) is deep-copied per run so stateful
    strategies cannot smuggle reputation between replays.
    """

    def run() -> RunCapture:
        report = run_grid(copy.deepcopy(config))
        return _record_events(report), report.as_dict()

    return run


def sanitize_grid(config: GridConfig, *, runs: int = 2) -> SanitizerReport:
    """Run a grid computation ``runs`` times and diff records and metrics."""
    return DeterminismSanitizer(grid_runner(config), runs=runs).check()


def mapreduce_runner(
    job: MapReduceJob,
    strategy,
    *,
    nodes: int = 200,
    reliability=0.7,
    seed: int = 0,
    **config_overrides,
) -> Runner:
    """A sanitizer runner for one MapReduce job (args as
    :func:`repro.mapreduce.engine.run_mapreduce`).

    Job and strategy are deep-copied per run: the engine reuses the
    strategy object across chunks, so shared state would otherwise leak
    between replays and mask (or fake) nondeterminism.
    """

    def run() -> RunCapture:
        report = run_mapreduce(
            copy.deepcopy(job),
            copy.deepcopy(strategy),
            nodes=nodes,
            reliability=reliability,
            seed=seed,
            **copy.deepcopy(config_overrides),
        )
        metrics = dict(report.map_report.as_dict())
        metrics["correct"] = report.correct
        metrics["corrupted_chunks"] = report.corrupted_chunks
        metrics["output"] = dict(report.output)
        return _record_events(report.map_report), metrics

    return run


def sanitize_mapreduce(
    job: MapReduceJob,
    strategy,
    *,
    runs: int = 2,
    nodes: int = 200,
    reliability=0.7,
    seed: int = 0,
    **config_overrides,
) -> SanitizerReport:
    """Run a MapReduce job ``runs`` times and diff map records, output,
    and metrics."""
    runner = mapreduce_runner(
        job,
        strategy,
        nodes=nodes,
        reliability=reliability,
        seed=seed,
        **config_overrides,
    )
    return DeterminismSanitizer(runner, runs=runs).check()
