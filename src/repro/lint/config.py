"""``[tool.reprolint]`` configuration loaded from ``pyproject.toml``.

Python 3.11+ ships :mod:`tomllib`; on older interpreters (the repo
supports 3.9) a minimal fallback parser handles the small subset of TOML
this table actually uses: string values and (possibly multi-line) arrays
of strings.  No third-party TOML package is required.
"""

from __future__ import annotations

import ast as _ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

try:  # Python >= 3.11
    import tomllib as _toml
except ImportError:  # pragma: no cover - exercised on 3.9/3.10 only
    _toml = None

DEFAULT_PATHS = ["src/repro"]

_SECTION_RE = re.compile(r"^\s*\[tool\.reprolint\]\s*(#.*)?$")
_ANY_SECTION_RE = re.compile(r"^\s*\[")
_KEY_RE = re.compile(r"^\s*([A-Za-z0-9_-]+)\s*=\s*(.*)$")


@dataclass
class LintConfig:
    """Resolved linter configuration.

    Attributes:
        paths: Default lint targets when the CLI gets no positional paths.
        enable: Rule ids to run, or ``None`` for every registered rule.
        disable: Rule ids to skip (applied after ``enable``).
        source: Where the config came from (for diagnostics).
    """

    paths: List[str] = field(default_factory=lambda: list(DEFAULT_PATHS))
    enable: Optional[List[str]] = None
    disable: List[str] = field(default_factory=list)
    source: str = "<defaults>"

    def selected_rule_ids(self, registered: List[str]) -> List[str]:
        selected = list(registered) if self.enable is None else [
            rule_id for rule_id in registered if rule_id in self.enable
        ]
        return [rule_id for rule_id in selected if rule_id not in self.disable]


def _fallback_parse(text: str) -> Dict[str, Any]:
    """Extract the ``[tool.reprolint]`` table without a TOML library."""
    table: Dict[str, Any] = {}
    lines = text.splitlines()
    in_section = False
    i = 0
    while i < len(lines):
        line = lines[i]
        if _SECTION_RE.match(line):
            in_section = True
            i += 1
            continue
        if in_section and _ANY_SECTION_RE.match(line):
            break
        if in_section:
            match = _KEY_RE.match(line)
            if match:
                key, value = match.group(1), match.group(2)
                # Accumulate lines until array brackets balance.
                while value.count("[") > value.count("]") and i + 1 < len(lines):
                    i += 1
                    value += " " + lines[i].strip()
                value = value.split("#", 1)[0].strip().rstrip(",")
                try:
                    table[key] = _ast.literal_eval(value)
                except (ValueError, SyntaxError):
                    pass  # unsupported TOML construct; ignore the key
        i += 1
    return table


def _read_table(path: Path) -> Dict[str, Any]:
    text = path.read_text(encoding="utf-8")
    if _toml is not None:
        data = _toml.loads(text)
        table = data.get("tool", {}).get("reprolint", {})
        return table if isinstance(table, dict) else {}
    return _fallback_parse(text)


def find_pyproject(start: Optional[Path] = None) -> Optional[Path]:
    """Nearest ``pyproject.toml`` at or above ``start`` (default: cwd)."""
    current = (start or Path.cwd()).resolve()
    for candidate in [current, *current.parents]:
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None


def load_config(pyproject: Optional[Path] = None) -> LintConfig:
    """Load ``[tool.reprolint]``; missing file or table yields defaults."""
    if pyproject is None:
        pyproject = find_pyproject()
    if pyproject is None or not pyproject.is_file():
        return LintConfig()
    table = _read_table(pyproject)
    config = LintConfig(source=str(pyproject))
    paths = table.get("paths")
    if isinstance(paths, list) and all(isinstance(p, str) for p in paths):
        config.paths = list(paths)
    enable = table.get("enable")
    if isinstance(enable, list) and all(isinstance(r, str) for r in enable):
        config.enable = list(enable)
    disable = table.get("disable")
    if isinstance(disable, list) and all(isinstance(r, str) for r in disable):
        config.disable = list(disable)
    return config
