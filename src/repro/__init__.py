"""repro: a reproduction of "Smart Redundancy for Distributed Computation".

Brun, Edwards, Bang, Medvidovic -- ICDCS 2011.

The package implements the paper's contribution -- **iterative
redundancy** -- together with every substrate its evaluation depends on:

* :mod:`repro.core` -- the redundancy strategies (traditional,
  progressive, iterative, plus credibility-based and adaptive-replication
  comparators) and their closed-form analysis (Equations (1)-(6));
* :mod:`repro.sim` -- a discrete-event simulation engine (the XDEVS
  substitute);
* :mod:`repro.dca` -- the paper's Figure-1 system model: task server,
  node pool, churn, Byzantine failure models;
* :mod:`repro.sat` -- the 3-SAT workload used in the BOINC deployment;
* :mod:`repro.volunteer` -- a BOINC-like pull-model volunteer-computing
  substrate on a simulated PlanetLab testbed;
* :mod:`repro.experiments` -- harnesses regenerating every figure in the
  paper's evaluation (run ``python -m repro.experiments --list``).

Quickstart::

    from repro.core import IterativeRedundancy
    from repro.dca import DcaConfig, run_dca

    report = run_dca(DcaConfig(
        tasks=10_000, nodes=1_000, reliability=0.7, seed=7,
        strategy=IterativeRedundancy(d=4),
    ))
    print(report.system_reliability, report.cost_factor)
"""

from repro.core import (
    AdaptiveReplication,
    ComplexIterativeRedundancy,
    CredibilityManager,
    CredibilityStrategy,
    IterativeRedundancy,
    NoRedundancy,
    ProgressiveRedundancy,
    RedundancyStrategy,
    TraditionalRedundancy,
    analysis,
)

__version__ = "1.0.0"

__all__ = [
    "AdaptiveReplication",
    "ComplexIterativeRedundancy",
    "CredibilityManager",
    "CredibilityStrategy",
    "IterativeRedundancy",
    "NoRedundancy",
    "ProgressiveRedundancy",
    "RedundancyStrategy",
    "TraditionalRedundancy",
    "analysis",
    "__version__",
]
