"""Tasks and workloads for the DCA model.

The paper's analysis works with binary tasks (assumption 4): every job
reports one of two values, and Byzantine failures all report the single
wrong one.  A :class:`Task` carries its ground-truth value (known to the
evaluation harness only, never to strategies) and the workload generates a
stream of such tasks.  Section 5.3's non-binary relaxation is modelled by
the failure model, which may invent distinct wrong values per job.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.core.types import ResultValue


@dataclass(frozen=True)
class Task:
    """One independently executable piece of the computation.

    Attributes:
        task_id: Stable identifier.
        true_value: The correct result (ground truth for scoring).
        wrong_value: The value colluding Byzantine nodes agree to report
            for this task (the binary worst case).
        nominal_duration: Optional fixed nominal job duration; ``None``
            means the simulation draws from its duration distribution.
    """

    task_id: int
    true_value: ResultValue = True
    wrong_value: ResultValue = False
    nominal_duration: Optional[float] = None

    def __post_init__(self) -> None:
        if self.true_value == self.wrong_value:
            raise ValueError("true and wrong values must differ")


class Workload:
    """A finite stream of independent binary tasks."""

    def __init__(self, count: int) -> None:
        if count < 1:
            raise ValueError(f"workload needs at least one task, got {count}")
        self.count = count

    def tasks(self) -> Iterator[Task]:
        for task_id in range(self.count):
            yield Task(task_id=task_id)

    def __len__(self) -> int:
        return self.count
