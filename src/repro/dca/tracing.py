"""Structured job-lifecycle tracing for DCA simulations.

Production distributed systems live and die by their traces; the DES is
no different when debugging a redundancy policy.  A :class:`TraceLog`
records typed events (submit, dispatch, complete, timeout, decide) with
simulated timestamps, supports filtering, and can reconstruct a per-task
timeline -- the raw material for response-time forensics.

Attach one via :func:`instrument_server`; the instrumentation wraps the
task server's internals without the server knowing (so the hot path stays
clean when tracing is off).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional

from repro.dca.taskserver import TaskServer

#: Event kinds, in rough lifecycle order.
SUBMIT = "submit"
DISPATCH = "dispatch"
COMPLETE = "complete"
TIMEOUT = "timeout"
DECIDE = "decide"
ACCEPT = "accept"

_KINDS = (SUBMIT, DISPATCH, COMPLETE, TIMEOUT, DECIDE, ACCEPT)


@dataclass(frozen=True)
class TraceEvent:
    """One recorded occurrence.

    Attributes:
        time: Simulated timestamp.
        kind: One of the module-level kind constants.
        task_id: The task involved (-1 for spot-checks).
        detail: Kind-specific payload (node id, value, wave size, ...).
    """

    time: float
    kind: str
    task_id: int
    detail: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown trace-event kind {self.kind!r}")


class TraceLog:
    """An append-only, queryable event log.

    Args:
        capacity: Optional bound; the oldest events are dropped once it
            is exceeded (simulations generate millions of events).
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._events: List[TraceEvent] = []
        self.dropped = 0

    def record(self, event: TraceEvent) -> None:
        self._events.append(event)
        if self.capacity is not None and len(self._events) > self.capacity:
            overflow = len(self._events) - self.capacity
            del self._events[:overflow]
            self.dropped += overflow

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def filter(
        self,
        *,
        kind: Optional[str] = None,
        task_id: Optional[int] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
    ) -> List[TraceEvent]:
        """Events matching every given criterion."""
        out = []
        for event in self._events:
            if kind is not None and event.kind != kind:
                continue
            if task_id is not None and event.task_id != task_id:
                continue
            if since is not None and event.time < since:
                continue
            if until is not None and event.time > until:
                continue
            out.append(event)
        return out

    def timeline(self, task_id: int) -> List[TraceEvent]:
        """The full lifecycle of one task, in time order."""
        return self.filter(task_id=task_id)

    def counts(self) -> Dict[str, int]:
        """Event counts per kind."""
        out: Dict[str, int] = {}
        for event in self._events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def render(self, task_id: int) -> str:
        """A human-readable timeline for one task."""
        lines = [f"task {task_id}"]
        for event in self.timeline(task_id):
            detail = " ".join(f"{k}={v}" for k, v in sorted(event.detail.items()))
            lines.append(f"  t={event.time:10.4f}  {event.kind:8s} {detail}")
        return "\n".join(lines)


def instrument_server(server: TaskServer, log: TraceLog) -> TraceLog:
    """Wrap a task server's internals so every lifecycle step is traced.

    Returns the log for chaining.  Instrumentation is monkey-patch style
    on the single server instance -- the un-instrumented hot path pays
    nothing.
    """
    sim = server.sim

    original_submit = server.submit

    def traced_submit(task):
        log.record(TraceEvent(sim.now, SUBMIT, task.task_id))
        return original_submit(task)

    original_assign = server._assign

    def traced_assign(job):
        result = original_assign(job)
        if job.node is not None:
            task_id = job.state.task.task_id if job.state is not None else -1
            log.record(
                TraceEvent(
                    sim.now,
                    DISPATCH,
                    task_id,
                    {"node": job.node.node_id, "spot_check": job.spot_check},
                )
            )
        return result

    original_complete = server._on_complete

    def traced_complete(job, value):
        # Record before delegating so the event precedes any ACCEPT it
        # causes (and survives a StopSimulation raised downstream).  The
        # guard mirrors the server's own: abandoned jobs and dead nodes
        # produce no counted completion.
        counted = not job.abandoned and job.node is not None and job.node.alive
        if counted:
            task_id = job.state.task.task_id if job.state is not None else -1
            log.record(
                TraceEvent(
                    sim.now,
                    COMPLETE,
                    task_id,
                    {"node": job.node.node_id, "value": value},
                )
            )
        return original_complete(job, value)

    original_deadline = server._on_deadline

    def traced_deadline(job):
        if not job.abandoned:
            task_id = job.state.task.task_id if job.state is not None else -1
            node_id = job.node.node_id if job.node is not None else None
            log.record(TraceEvent(sim.now, TIMEOUT, task_id, {"node": node_id}))
        return original_deadline(job)

    original_decide = server._decide

    def traced_decide(state):
        before_done = state.done
        try:
            # May raise StopSimulation on the final task (the server's
            # on_all_done hook); record in ``finally`` so the last accept
            # is still traced.
            return original_decide(state)
        finally:
            if state.done and not before_done:
                log.record(
                    TraceEvent(
                        sim.now,
                        ACCEPT,
                        state.task.task_id,
                        {"jobs": state.jobs_used, "waves": state.waves},
                    )
                )
            elif not state.done:
                log.record(
                    TraceEvent(
                        sim.now,
                        DECIDE,
                        state.task.task_id,
                        {"outstanding_more": state.vote.outstanding},
                    )
                )

    server.submit = traced_submit
    server._assign = traced_assign
    server._on_complete = traced_complete
    server._on_deadline = traced_deadline
    server._decide = traced_decide
    return log
