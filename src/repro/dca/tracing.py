"""Structured job-lifecycle tracing for DCA simulations.

Production distributed systems live and die by their traces; the DES is
no different when debugging a redundancy policy.  A :class:`TraceLog`
records typed events (submit, dispatch, complete, timeout, decide) with
simulated timestamps, supports filtering, and can reconstruct a per-task
timeline -- the raw material for response-time forensics.

Attach one via :func:`instrument_server`.  Historically this module
monkey-patched the server's internals; it is now a thin adapter
(:class:`TraceLogRecorder`) over the unified :mod:`repro.obs` recorder
hooks, translating spans and events back into the legacy
:class:`TraceEvent` vocabulary byte-for-byte.  The public API
(``TraceLog``, ``instrument_server``, the kind constants) is unchanged;
new code should record through :mod:`repro.obs` directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional

from repro.dca.taskserver import TaskServer
from repro.obs.names import (
    DCA_DECIDE_EVENT,
    DCA_JOB_SPAN,
    DCA_TASK_SPAN,
)
from repro.obs.recorder import Recorder

#: Event kinds, in rough lifecycle order.
SUBMIT = "submit"
DISPATCH = "dispatch"
COMPLETE = "complete"
TIMEOUT = "timeout"
DECIDE = "decide"
ACCEPT = "accept"

_KINDS = (SUBMIT, DISPATCH, COMPLETE, TIMEOUT, DECIDE, ACCEPT)


@dataclass(frozen=True)
class TraceEvent:
    """One recorded occurrence.

    Attributes:
        time: Simulated timestamp.
        kind: One of the module-level kind constants.
        task_id: The task involved (-1 for spot-checks).
        detail: Kind-specific payload (node id, value, wave size, ...).
    """

    time: float
    kind: str
    task_id: int
    detail: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown trace-event kind {self.kind!r}")


class TraceLog:
    """An append-only, queryable event log.

    Args:
        capacity: Optional bound; the oldest events are dropped once it
            is exceeded (simulations generate millions of events).
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._events: List[TraceEvent] = []
        self.dropped = 0

    def record(self, event: TraceEvent) -> None:
        self._events.append(event)
        if self.capacity is not None and len(self._events) > self.capacity:
            overflow = len(self._events) - self.capacity
            del self._events[:overflow]
            self.dropped += overflow

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def filter(
        self,
        *,
        kind: Optional[str] = None,
        task_id: Optional[int] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
    ) -> List[TraceEvent]:
        """Events matching every given criterion."""
        out = []
        for event in self._events:
            if kind is not None and event.kind != kind:
                continue
            if task_id is not None and event.task_id != task_id:
                continue
            if since is not None and event.time < since:
                continue
            if until is not None and event.time > until:
                continue
            out.append(event)
        return out

    def timeline(self, task_id: int) -> List[TraceEvent]:
        """The full lifecycle of one task, in time order."""
        return self.filter(task_id=task_id)

    def counts(self) -> Dict[str, int]:
        """Event counts per kind."""
        out: Dict[str, int] = {}
        for event in self._events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def render(self, task_id: int) -> str:
        """A human-readable timeline for one task."""
        lines = [f"task {task_id}"]
        for event in self.timeline(task_id):
            detail = " ".join(f"{k}={v}" for k, v in sorted(event.detail.items()))
            lines.append(f"  t={event.time:10.4f}  {event.kind:8s} {detail}")
        return "\n".join(lines)


class TraceLogRecorder(Recorder):
    """Adapter that renders :mod:`repro.obs` hooks as legacy trace events.

    The task server emits unified spans and events (``dca.task``,
    ``dca.job``, ``dca.decide``); this recorder translates each back into
    the :class:`TraceEvent` vocabulary and appends it to a
    :class:`TraceLog`, preserving the exact kinds, ordering, and detail
    payloads the old monkey-patch instrumentation produced (the golden
    trace fingerprints pin this).
    """

    #: Attribute keys folded into the TraceEvent envelope rather than
    #: its ``detail`` dict.
    _ENVELOPE_KEYS = ("task", "outcome")

    def __init__(self, log: TraceLog) -> None:
        self.log = log
        self.enabled = True

    def _detail(self, attrs: Optional[Dict[str, Any]]) -> Dict[str, Any]:
        if not attrs:
            return {}
        return {k: v for k, v in attrs.items() if k not in self._ENVELOPE_KEYS}

    @staticmethod
    def _task_id(attrs: Optional[Dict[str, Any]]) -> int:
        return attrs.get("task", -1) if attrs else -1

    def span_begin(self, name, key, time, attrs=None):
        if name == DCA_TASK_SPAN:
            self.log.record(TraceEvent(time, SUBMIT, self._task_id(attrs)))
        elif name == DCA_JOB_SPAN:
            self.log.record(TraceEvent(time, DISPATCH, self._task_id(attrs), self._detail(attrs)))

    def span_end(self, name, key, time, attrs=None):
        if name == DCA_TASK_SPAN:
            self.log.record(TraceEvent(time, ACCEPT, self._task_id(attrs), self._detail(attrs)))
        elif name == DCA_JOB_SPAN:
            outcome = (attrs or {}).get("outcome")
            kind = COMPLETE if outcome == "complete" else TIMEOUT
            self.log.record(TraceEvent(time, kind, self._task_id(attrs), self._detail(attrs)))

    def event(self, name, time, attrs=None):
        if name == DCA_DECIDE_EVENT:
            self.log.record(TraceEvent(time, DECIDE, self._task_id(attrs), self._detail(attrs)))


def instrument_server(server: TaskServer, log: TraceLog) -> TraceLog:
    """Attach a :class:`TraceLog` to a task server's lifecycle hooks.

    Returns the log for chaining.  This is now a thin adapter over the
    server's :meth:`~repro.dca.taskserver.TaskServer.attach_recorder`
    hook (it tees alongside any recorder already attached); the
    un-instrumented hot path still pays nothing.

    .. deprecated:: retained for backwards compatibility.  New code
       should pass a :class:`repro.obs.TelemetryRecorder` to the
       simulation instead and use the richer capture/export pipeline.
    """
    server.attach_recorder(TraceLogRecorder(log))
    return log
