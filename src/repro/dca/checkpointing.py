"""Checkpointing for long-running jobs (the Section 6 companion).

The paper's related-work section: "Traditional checkpoint techniques can
also be applied to DCAs to log partially completed work and prevent data
and computation loss in cases of crash failures.  Checkpoints can be
effective when individual subcomputations take a long time to complete."
Redundancy and checkpointing are orthogonal: voting defends the *result*
against Byzantine lies; checkpoints defend the *work* against crash
restarts.  This module provides both the analysis and a simulator of a
checkpointed job under Poisson crashes, so the repository can quantify
the trade and the `examples`/ablation can exercise it.

Model: a job needs ``work`` units of computation.  Crashes arrive as a
Poisson process with rate ``crash_rate``; a crash throws away progress
since the last checkpoint and costs ``restart_cost`` before computing
resumes.  Writing a checkpoint costs ``checkpoint_cost``.  With interval
``tau`` between checkpoints, the expected wall-clock per segment follows
the classic first-principles formula (e.g. Daly 2006):

    E[segment] = (1/lambda + restart) * (exp(lambda * (tau + c)) - 1)

for a segment of ``tau`` useful work plus a ``c``-cost checkpoint, and
Young's approximation ``tau* ~ sqrt(2 c / lambda)`` gives the
near-optimal interval.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional

__all__ = [
    "CheckpointPolicy",
    "expected_segment_time",
    "expected_completion_time",
    "optimal_interval",
    "simulate_job",
]


@dataclass(frozen=True)
class CheckpointPolicy:
    """How a long job checkpoints.

    Attributes:
        interval: Useful work between checkpoints; ``None`` or infinity
            disables checkpointing (all-or-nothing restart).
        checkpoint_cost: Wall-clock cost of writing one checkpoint.
        restart_cost: Wall-clock cost paid after each crash before any
            computation resumes (reboot, redeploy, reload state).
    """

    interval: Optional[float] = None
    checkpoint_cost: float = 0.0
    restart_cost: float = 0.0

    def __post_init__(self) -> None:
        if self.interval is not None and self.interval <= 0:
            raise ValueError(f"interval must be positive, got {self.interval}")
        if self.checkpoint_cost < 0 or self.restart_cost < 0:
            raise ValueError("costs must be non-negative")

    @property
    def enabled(self) -> bool:
        return self.interval is not None and math.isfinite(self.interval)


def expected_segment_time(
    segment_work: float,
    crash_rate: float,
    *,
    restart_cost: float = 0.0,
) -> float:
    """Expected wall-clock to finish ``segment_work`` of uninterruptible
    work under Poisson crashes (progress lost on each crash).

    Classic renewal argument: E[T] = (1/lambda + R)(e^{lambda w} - 1),
    reducing to ``w`` as ``lambda -> 0``.
    """
    if segment_work < 0:
        raise ValueError(f"work must be non-negative, got {segment_work}")
    if crash_rate < 0:
        raise ValueError(f"crash rate must be non-negative, got {crash_rate}")
    if crash_rate == 0.0:
        return segment_work
    return (1.0 / crash_rate + restart_cost) * math.expm1(crash_rate * segment_work)


def expected_completion_time(
    work: float,
    crash_rate: float,
    policy: CheckpointPolicy,
) -> float:
    """Expected wall-clock to finish ``work`` under a checkpoint policy.

    The job is a chain of segments of ``policy.interval`` work, each
    followed by a checkpoint write (itself vulnerable to crashes, so the
    exposed window is ``interval + checkpoint_cost``); the final partial
    segment skips the checkpoint.
    """
    if work < 0:
        raise ValueError(f"work must be non-negative, got {work}")
    if not policy.enabled:
        return expected_segment_time(work, crash_rate, restart_cost=policy.restart_cost)
    tau = policy.interval
    full_segments = int(work // tau)
    remainder = work - full_segments * tau
    if remainder <= 1e-12 and full_segments > 0:
        # The final segment finishes the job, so it skips the checkpoint.
        checkpointed = full_segments - 1
        final_work = tau
    else:
        checkpointed = full_segments
        final_work = remainder
    total = checkpointed * expected_segment_time(
        tau + policy.checkpoint_cost, crash_rate, restart_cost=policy.restart_cost
    )
    if final_work > 0:
        total += expected_segment_time(
            final_work, crash_rate, restart_cost=policy.restart_cost
        )
    return total


def optimal_interval(crash_rate: float, checkpoint_cost: float) -> float:
    """Young's approximation: tau* ~ sqrt(2 c / lambda).

    Raises:
        ValueError: if either parameter is non-positive (with no crashes
            or free checkpoints there is no finite optimum to approximate).
    """
    if crash_rate <= 0:
        raise ValueError("optimal interval undefined without crashes")
    if checkpoint_cost <= 0:
        raise ValueError("optimal interval undefined with free checkpoints")
    return math.sqrt(2.0 * checkpoint_cost / crash_rate)


@dataclass(frozen=True)
class JobOutcomeStats:
    """What one simulated long job experienced."""

    wall_clock: float
    crashes: int
    checkpoints_written: int
    work_lost: float


def simulate_job(
    work: float,
    crash_rate: float,
    policy: CheckpointPolicy,
    rng: random.Random,
    *,
    max_crashes: int = 10_000_000,
) -> JobOutcomeStats:
    """Monte-Carlo one job's wall-clock under crashes and checkpoints.

    Cross-checks :func:`expected_completion_time` and powers the
    checkpointing example.
    """
    if work < 0:
        raise ValueError(f"work must be non-negative, got {work}")
    if crash_rate < 0:
        raise ValueError(f"crash rate must be non-negative, got {crash_rate}")
    wall = 0.0
    crashes = 0
    checkpoints = 0
    lost = 0.0
    done = 0.0  # durable (checkpointed) work
    while done < work:
        tau = policy.interval if policy.enabled else math.inf
        segment = min(tau, work - done)
        # Checkpoint write is exposed to crashes together with the segment
        # (except for the final partial segment, which skips the write).
        writes_checkpoint = (
            policy.enabled and segment == tau and done + segment < work - 1e-12
        )
        exposed = segment + (policy.checkpoint_cost if writes_checkpoint else 0.0)
        progress = 0.0
        while True:
            crash_in = rng.expovariate(crash_rate) if crash_rate > 0 else math.inf
            if crash_in >= exposed - progress:
                wall += exposed - progress
                break
            wall += crash_in + policy.restart_cost
            lost += min(progress + crash_in, segment)
            progress = 0.0
            crashes += 1
            if crashes > max_crashes:
                raise RuntimeError("crash storm exceeded the simulation bound")
        done += segment
        if writes_checkpoint:
            checkpoints += 1
    return JobOutcomeStats(
        wall_clock=wall,
        crashes=crashes,
        checkpoints_written=checkpoints,
        work_lost=lost,
    )
