"""The task server: job dispatch, vote bookkeeping, and strategy-driven
redundancy decisions (the central box of the paper's Figure 1).

Responsibilities:

* keep a FIFO queue of jobs awaiting a free node,
* assign each job to a *uniformly random* available node (assumption 1),
* watch deadlines: a job silent past the timeout counts as a failed
  response (Section 2.2) and its ``None`` outcome is folded into the vote,
* when a task's wave completes, ask the strategy to accept or extend,
* optionally divert a fraction of assignments to *spot-check* jobs
  (pure overhead on their own; with a credibility-manager strategy --
  the Sarmenta comparator -- the outcomes feed its reputation tallies).
"""

from __future__ import annotations

import random
from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from repro.core.strategy import RedundancyStrategy, is_node_aware
from repro.core.types import Decision, JobOutcome, TaskVerdict, VoteState
from repro.dca.failures import ByzantineCollusion, FailureModel
from repro.dca.node import Node
from repro.dca.pool import NodePool
from repro.dca.report import TaskRecord
from repro.obs.names import (
    DCA_ACCEPTS,
    DCA_COMPLETES,
    DCA_DECIDE_EVENT,
    DCA_DECISIONS,
    DCA_DISPATCHES,
    DCA_JOBS_PER_TASK,
    DCA_JOB_SPAN,
    DCA_RESPONSE_TIME,
    DCA_SPOT_CHECKS,
    DCA_SUBMITS,
    DCA_TASK_SPAN,
    DCA_TIMEOUTS,
    DCA_WAVE_SIZE,
)
from repro.obs.recorder import Recorder, TeeRecorder, active
from repro.sim.engine import Simulator, StopSimulation
from repro.sim.streams import DURATIONS, FAILURES, NODE_SELECTION, SPOT_CHECKS
from repro.sim.events import Event
from repro.dca.workload import Task


class _TaskState:
    __slots__ = (
        "task",
        "vote",
        "jobs_used",
        "waves",
        "first_dispatch",
        "submitted_at",
        "done",
    )

    def __init__(self, task: Task, submitted_at: float = 0.0) -> None:
        self.task = task
        self.vote = VoteState()
        self.jobs_used = 0
        self.waves = 0
        self.first_dispatch: Optional[float] = None
        self.submitted_at = submitted_at
        self.done = False


class _Job:
    __slots__ = (
        "state",
        "node",
        "completion_event",
        "deadline_event",
        "abandoned",
        "assigned_at",
        "spot_check",
    )

    def __init__(self, state: Optional[_TaskState], spot_check: bool = False) -> None:
        self.state = state  # None for spot-check jobs
        self.node: Optional[Node] = None
        self.completion_event: Optional[Event] = None
        self.deadline_event: Optional[Event] = None
        self.abandoned = False
        self.assigned_at = 0.0
        self.spot_check = spot_check


class TaskServer:
    """Drives tasks to verdicts over a node pool.

    Args:
        sim: The discrete-event simulator.
        pool: Node pool to draw workers from.
        strategy: Redundancy strategy shared by all tasks.
        failure_model: What failed jobs report (default: colluding
            Byzantine, the paper's worst case).
        duration_low / duration_high: Uniform nominal job durations.
        timeout: Deadline after which a silent job counts as failed.
        spot_check_rate: Probability an assignment is converted into a
            spot-check; outcomes feed the strategy's credibility manager
            when it exposes one.
        on_all_done: Called once every submitted task has a verdict.
        recorder: Telemetry recorder (see :mod:`repro.obs`); defaults to
            the simulator's.  Disabled recorders normalize to ``None``,
            so every instrumentation site is a single ``is not None``
            branch when telemetry is off.
    """

    def __init__(
        self,
        sim: Simulator,
        pool: NodePool,
        strategy: RedundancyStrategy,
        *,
        failure_model: Optional[FailureModel] = None,
        duration_low: float = 0.5,
        duration_high: float = 1.5,
        timeout: float = 15.0,
        spot_check_rate: float = 0.0,
        prioritize_followups: bool = True,
        on_all_done: Optional[Callable[[], None]] = None,
        recorder: Optional[Recorder] = None,
    ) -> None:
        self.sim = sim
        self.pool = pool
        self.strategy = strategy
        self.failure_model = failure_model or ByzantineCollusion()
        self.duration_low = duration_low
        self.duration_high = duration_high
        self.timeout = timeout
        self.spot_check_rate = spot_check_rate
        self.on_all_done = on_all_done

        self._node_aware = is_node_aware(strategy)
        self._credibility_manager = getattr(strategy, "manager", None)
        self.prioritize_followups = prioritize_followups
        #: First waves of untouched tasks.
        self._queue: Deque[_Job] = deque()
        #: Follow-up waves of in-flight tasks.  When
        #: ``prioritize_followups`` is set (the default, matching the
        #: paper's response-time regime where open tasks finish before new
        #: ones start), these are assigned first; otherwise both queues
        #: drain FIFO together.
        self._followup_queue: Deque[_Job] = deque()
        self._states: Dict[int, _TaskState] = {}
        self.records: List[TaskRecord] = []
        self.total_jobs_dispatched = 0
        self.jobs_timed_out = 0
        self.spot_checks_issued = 0
        self._remaining = 0

        self._rng_select = sim.rng.stream(NODE_SELECTION)
        self._rng_durations = sim.rng.stream(DURATIONS)
        self._rng_failures = sim.rng.stream(FAILURES)
        self._rng_spot = sim.rng.stream(SPOT_CHECKS)

        self._recorder = active(recorder if recorder is not None else sim.recorder)
        self._strategy_label = strategy.describe() if self._recorder is not None else ""

    def attach_recorder(self, recorder: Optional[Recorder]) -> None:
        """Attach ``recorder`` (teeing onto any recorder already set).

        This is how :func:`repro.dca.tracing.instrument_server` hooks a
        legacy :class:`~repro.dca.tracing.TraceLog` onto the unified
        telemetry stream after construction.
        """
        recorder = active(recorder)
        if recorder is None:
            return
        if self._recorder is None:
            self._recorder = recorder
        else:
            self._recorder = TeeRecorder(self._recorder, recorder)
        self._strategy_label = self.strategy.describe()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    @property
    def remaining_tasks(self) -> int:
        return self._remaining

    def submit(self, task: Task) -> None:
        """Accept a task and enqueue its first wave of jobs."""
        if task.task_id in self._states:
            raise ValueError(f"task {task.task_id} already submitted")
        state = _TaskState(task=task, submitted_at=self.sim.now)
        self._states[task.task_id] = state
        self._remaining += 1
        rec = self._recorder
        if rec is not None:
            # Before the first wave enqueues, so submit precedes its
            # dispatches in the stream (matching the legacy trace order).
            rec.span_begin(DCA_TASK_SPAN, task.task_id, self.sim.now, {"task": task.task_id})
            rec.count(DCA_SUBMITS)
        self._enqueue_jobs(state, self.strategy.initial_jobs())
        state.waves = 1

    def pump(self) -> None:
        """Assign queued jobs to available nodes (call after churn joins)."""
        pool = self.pool
        queue = self._queue
        followups = self._followup_queue
        prioritize = self.prioritize_followups
        while pool.available_count > 0:
            if prioritize and followups:
                job = followups.popleft()
            elif queue:
                job = queue.popleft()
            elif followups:
                job = followups.popleft()
            else:
                break
            if job.abandoned or (job.state is not None and job.state.done):
                continue
            self._assign(job)

    # ------------------------------------------------------------------
    # Dispatch machinery
    # ------------------------------------------------------------------

    def _enqueue_jobs(self, state: _TaskState, count: int, *, followup: bool = False) -> None:
        rec = self._recorder
        if rec is not None:
            rec.observe(DCA_WAVE_SIZE, count, labels={"followup": followup})
        state.vote.dispatched(count)
        target = self._followup_queue if followup else self._queue
        for _ in range(count):
            target.append(_Job(state=state))
        self.pump()

    def _maybe_spot_check(self) -> bool:
        # Spot-checks divert assignments whenever a rate is set -- with a
        # credibility manager the outcomes feed its reputation tallies;
        # without one they are pure overhead (the DcaConfig contract).
        # The rate gate short-circuits first, so rate-0 runs never touch
        # the spot-check stream.
        return self.spot_check_rate > 0.0 and self._rng_spot.random() < self.spot_check_rate

    def _assign(self, job: _Job) -> None:
        node = self.pool.acquire_random(self._rng_select)
        if node is None:  # raced with a departure; requeue at the front
            self._followup_queue.appendleft(job)
            return
        if not job.spot_check and self._maybe_spot_check():
            # Divert this node to a spot-check first; the real job goes
            # back to the head of the high-priority queue.
            self._followup_queue.appendleft(job)
            job = _Job(state=None, spot_check=True)
            self.spot_checks_issued += 1
        sim = self.sim
        now = sim.now
        state = job.state
        job.node = node
        job.assigned_at = now
        self.total_jobs_dispatched += 1
        if state is not None and state.first_dispatch is None:
            state.first_dispatch = now
        rec = self._recorder
        if rec is not None:
            rec.span_begin(
                DCA_JOB_SPAN,
                node.node_id,
                now,
                {
                    "task": state.task.task_id if state is not None else -1,
                    "node": node.node_id,
                    "spot_check": job.spot_check,
                },
            )
            rec.count(DCA_DISPATCHES)
            if job.spot_check:
                rec.count(DCA_SPOT_CHECKS)

        task = state.task if state is not None else _SPOT_CHECK_TASK
        value = self.failure_model.report(task, node, self._rng_failures)
        nominal = task.nominal_duration
        if nominal is None:
            nominal = self._rng_durations.uniform(self.duration_low, self.duration_high)
        duration = node.job_duration(nominal)

        schedule_after = sim.schedule_after
        job.deadline_event = schedule_after(
            self.timeout, lambda ev, j=job: self._on_deadline(j)
        )
        if value is not None:
            job.completion_event = schedule_after(
                duration, lambda ev, j=job, v=value: self._on_complete(j, v)
            )
        # A silent job (value None) schedules no completion: only the
        # deadline will fire, exactly like a node that never reports.

    def _on_complete(self, job: _Job, value) -> None:
        if job.abandoned:
            return
        node = job.node
        assert node is not None
        if not node.alive:
            # The node quit mid-job; its result is lost.  The deadline
            # event will fold the silence into the vote.
            return
        rec = self._recorder
        if rec is not None:
            # Before the vote folds in, so the completion precedes any
            # accept it causes (and survives StopSimulation downstream).
            rec.span_end(
                DCA_JOB_SPAN,
                node.node_id,
                self.sim.now,
                {
                    "task": job.state.task.task_id if job.state is not None else -1,
                    "node": node.node_id,
                    "value": value,
                    "outcome": "complete",
                },
            )
            rec.count(DCA_COMPLETES)
        job.abandoned = True
        if job.deadline_event is not None:
            self.sim.cancel(job.deadline_event)
        self.pool.release(node)
        if job.spot_check:
            self._finish_spot_check(node, value)
        else:
            node.jobs_completed += 1
            self._record_outcome(
                job.state,
                JobOutcome(
                    value=value,
                    node_id=node.node_id,
                    elapsed=self.sim.now - job.assigned_at,
                ),
            )
        self.pump()

    def _on_deadline(self, job: _Job) -> None:
        if job.abandoned:
            return
        rec = self._recorder
        if rec is not None:
            node_id = job.node.node_id if job.node is not None else None
            rec.span_end(
                DCA_JOB_SPAN,
                node_id,
                self.sim.now,
                {
                    "task": job.state.task.task_id if job.state is not None else -1,
                    "node": node_id,
                    "outcome": "timeout",
                },
            )
            rec.count(DCA_TIMEOUTS)
        job.abandoned = True
        if job.completion_event is not None:
            self.sim.cancel(job.completion_event)
        self.jobs_timed_out += 1
        node = job.node
        if node is not None:
            node.jobs_failed += 1
            # The node either died or hung; if it is still nominally alive
            # we return it to the pool (it "recovers"), mirroring flaky
            # volunteers that stay registered.
            if node.alive:
                self.pool.release(node)
        if job.spot_check:
            if node is not None and self._credibility_manager is not None:
                self._credibility_manager.spot_check(node.node_id, passed=False)
        else:
            self._record_outcome(
                job.state,
                JobOutcome(value=None, node_id=node.node_id if node else None),
            )
        self.pump()

    def _finish_spot_check(self, node: Node, value) -> None:
        if self._credibility_manager is not None:
            passed = value == _SPOT_CHECK_TASK.true_value
            self._credibility_manager.spot_check(node.node_id, passed=passed)

    # ------------------------------------------------------------------
    # Vote bookkeeping
    # ------------------------------------------------------------------

    def _record_outcome(self, state: Optional[_TaskState], outcome: JobOutcome) -> None:
        assert state is not None
        if state.done:
            return
        state.vote.record(outcome)
        state.jobs_used += 1
        if self._node_aware:
            self.strategy.record_outcome(state.task.task_id, outcome)
        if state.vote.outstanding == 0:
            self._decide(state)

    def _decide(self, state: _TaskState) -> None:
        decision = self.strategy.decide(state.vote)
        rec = self._recorder
        if not decision.done:
            state.waves += 1
            self._enqueue_jobs(state, decision.more_jobs, followup=True)
            if rec is not None:
                # After the wave enqueues (and possibly assigns), so the
                # new dispatches precede the decide event -- the exact
                # order the legacy monkey-patch tracer produced.
                rec.event(
                    DCA_DECIDE_EVENT,
                    self.sim.now,
                    {"task": state.task.task_id, "outstanding_more": state.vote.outstanding},
                )
                rec.count(
                    DCA_DECISIONS,
                    labels={"strategy": self._strategy_label, "outcome": "extend"},
                )
            return
        state.done = True
        now = self.sim.now
        record = TaskRecord(
            task_id=state.task.task_id,
            value=decision.accepted,
            correct=decision.accepted == state.task.true_value,
            jobs_used=state.jobs_used,
            waves=state.waves,
            response_time=now - (state.first_dispatch if state.first_dispatch is not None else now),
            turnaround=now - state.submitted_at,
        )
        self.records.append(record)
        if rec is not None:
            rec.span_end(
                DCA_TASK_SPAN,
                state.task.task_id,
                now,
                {"task": state.task.task_id, "jobs": state.jobs_used, "waves": state.waves},
            )
            rec.count(DCA_ACCEPTS)
            rec.count(
                DCA_DECISIONS,
                labels={"strategy": self._strategy_label, "outcome": "accept"},
            )
            rec.observe(DCA_RESPONSE_TIME, record.response_time)
            rec.observe(DCA_JOBS_PER_TASK, state.jobs_used)
        if self._node_aware:
            self.strategy.task_finished(
                state.task.task_id,
                TaskVerdict(
                    value=decision.accepted,
                    correct=None,  # ground truth is never shown to strategies
                    jobs_used=state.jobs_used,
                    waves=state.waves,
                ),
            )
        self._remaining -= 1
        if self._remaining == 0 and self.on_all_done is not None:
            self.on_all_done()


#: Ground-truth task used for spot-check jobs: the server knows the answer.
_SPOT_CHECK_TASK = Task(task_id=-1, true_value=True, wrong_value=False)
