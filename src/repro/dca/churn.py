"""Node churn: volunteers joining and quitting the pool (Figure 1's
"new nodes volunteer" / "nodes quit pool" arrows).

Both directions are Poisson processes.  A departing node that is mid-job
simply never reports; the task server's deadline treats it as failed,
exactly like the paper's timeout rule.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from repro.core.distributions import ReliabilityDistribution
from repro.dca.node import Node
from repro.dca.pool import NodePool
from repro.sim.engine import Simulator
from repro.sim.streams import CHURN


class ChurnProcess:
    """Drives joins and departures on a node pool.

    Args:
        sim: The simulator.
        pool: The pool to mutate.
        reliability: Distribution new volunteers' reliabilities come from.
        arrival_rate: Poisson rate of joins per simulated time unit.
        departure_rate: Poisson rate of departures per time unit.
        speed_spread: New nodes' speed factors are uniform in
            ``[1 - spread, 1 + spread]``.
        unresponsive_prob: Per-job silent probability for new nodes.
        on_join: Hook called after each join (the task server uses it to
            pump its queue onto the fresh node).
    """

    def __init__(
        self,
        sim: Simulator,
        pool: NodePool,
        reliability: ReliabilityDistribution,
        *,
        arrival_rate: float = 0.0,
        departure_rate: float = 0.0,
        speed_spread: float = 0.0,
        unresponsive_prob: float = 0.0,
        on_join: Optional[Callable[[Node], None]] = None,
    ) -> None:
        if arrival_rate < 0 or departure_rate < 0:
            raise ValueError("churn rates must be non-negative")
        self.sim = sim
        self.pool = pool
        self.reliability = reliability
        self.arrival_rate = arrival_rate
        self.departure_rate = departure_rate
        self.speed_spread = speed_spread
        self.unresponsive_prob = unresponsive_prob
        self.on_join = on_join
        self._rng = sim.rng.stream(CHURN)
        self._stopped = False

    def start(self) -> None:
        """Schedule the first arrival and departure."""
        if self.arrival_rate > 0:
            self._schedule_arrival()
        if self.departure_rate > 0:
            self._schedule_departure()

    def stop(self) -> None:
        """Stop generating churn (lets the event queue drain)."""
        self._stopped = True

    # ------------------------------------------------------------------

    def make_node(self) -> Node:
        """Build a fresh volunteer node."""
        speed = 1.0
        if self.speed_spread > 0:
            speed = self._rng.uniform(1.0 - self.speed_spread, 1.0 + self.speed_spread)
        return Node(
            node_id=self.pool.allocate_id(),
            reliability=self.reliability.sample(self._rng),
            speed_factor=speed,
            unresponsive_prob=self.unresponsive_prob,
        )

    def _schedule_arrival(self) -> None:
        delay = self._rng.expovariate(self.arrival_rate)
        self.sim.schedule_after(delay, self._on_arrival)

    def _on_arrival(self, event) -> None:
        if self._stopped:
            return
        node = self.make_node()
        self.pool.join(node)
        if self.on_join is not None:
            self.on_join(node)
        self._schedule_arrival()

    def _schedule_departure(self) -> None:
        delay = self._rng.expovariate(self.departure_rate)
        self.sim.schedule_after(delay, self._on_departure)

    def _on_departure(self, event) -> None:
        if self._stopped:
            return
        node = self.pool.random_alive(self._rng)
        if node is not None and len(self.pool) > 1:
            self.pool.leave(node.node_id)
        self._schedule_departure()
