"""Columnar wave-batched DCA engine for million-task runs.

The object-per-job DES (:mod:`repro.dca.simulation`) tops out around a
few thousand tasks per second: every job is a Python object, every vote a
dict update, every completion a heap event.  This module replaces that
churn with struct-of-arrays state -- one numpy column per task for the
``True``/``False`` tallies, silent counts, wave clocks, and jobs used --
and advances *all* active tasks one wave at a time.

The model is the paper's own analysis regime:

* **Assumption 1 (contention-free pool):** every wave's jobs run on
  independent random nodes concurrently, so a task's wave completes at
  the slowest of its jobs and the next wave starts immediately.  Node
  contention delays *when* jobs run, never *what* they report, so
  reliability, cost factor, and wave counts are exactly those of the
  DES; response times and makespan are the contention-free values.
* **Assumption 4 (binary votes):** the colluding-Byzantine worst case,
  :class:`~repro.dca.failures.ByzantineCollusion`, where each task has
  one true and one colluding wrong value.  Tallies are two int columns.

Beyond the contention-free core, the engine covers the paper's fault
regimes (Figures 5b/5c/6):

* **Churn** keeps a struct-of-arrays node pool (reliability, speed, and
  stable id columns) and applies Poisson departure/arrival batches at
  wave boundaries: the global *frontier* clock advances by each wave's
  maximum span, and the next wave's node draws see the compacted pool.
  This is a wave-boundary model of the DES's continuous churn -- a node
  cannot quit *mid-job* here (in the DES that job times out), so churn
  results match the DES statistically, not byte-for-byte.
* **Spot-checks** divert assignments to known-answer jobs exactly like
  :class:`~repro.dca.taskserver.TaskServer` (each assignment attempt
  draws the gate again, so one slot can divert repeatedly), drawing
  everything spot-related from a dedicated stream so real task outcomes
  are untouched.  Per-node pass/fail tallies accumulate in grow-only
  columns and a node with any failed check counts as blacklisted,
  mirroring :meth:`~repro.core.credibility.CredibilityManager.spot_check`.
  Unlike the DES, tallies are not cut off by the end-of-run
  ``StopSimulation`` (a shutdown artifact, not model semantics).
* **``max_time`` horizons** compare wave-end clocks against the
  deadline: a wave whose slowest job lands past the horizon is
  truncated -- its dispatches count (the DES enqueues them before the
  horizon) but the task never completes, contributes no timeouts (its
  deadline events fire past the horizon), and is excluded from the
  per-task aggregates, exactly like an unfinished DES task.

Strategy decisions stay behind the existing interfaces: the built-in
strategies (iterative, progressive, traditional, complex-iterative) have
vectorised deciders that replay their ``decide(VoteState)`` arithmetic
over whole columns, and any other non-node-aware strategy falls back to
a per-task loop through a real :class:`~repro.core.types.VoteState` --
slower, but semantically the strategy's own code.  The new regime
kernels follow the same pattern: each vectorised kernel in ``_KERNELS``
has a scalar fallback in ``_KERNEL_FALLBACKS`` consuming the *same*
pre-drawn arrays, and the cross-check tests swap them in and assert
byte-identical reports.

Configurations outside the regime (node-aware strategies, non-binary
failure models) are rejected with :class:`ColumnarUnsupported`; use the
DES for those.

Determinism: all draws come from seeded numpy generators whose seeds
derive from the config seed via :class:`~repro.sim.rng.RngRegistry`
spawn names, so same-config runs are byte-identical (given a numpy
version) and the columnar engine never perturbs the DES streams.  Spawn
seeds are stateless hashes of their names, so the ``churn`` and
``spot-checks`` streams never perturb the four legacy streams either: a
no-churn, no-spot-check run draws exactly what it always drew.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple, Type

try:  # gated: the container/CI images ship numpy, but it stays optional
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None  # type: ignore[assignment]

from repro.core.iterative import IterativeRedundancy
from repro.core.iterative_complex import ComplexIterativeRedundancy
from repro.core.progressive import ProgressiveRedundancy
from repro.core.strategy import RedundancyStrategy, is_node_aware
from repro.core.traditional import TraditionalRedundancy
from repro.core.types import VoteState
from repro.dca.config import DcaConfig
from repro.dca.failures import ByzantineCollusion
from repro.obs.names import (
    DCA_ACCEPTS,
    DCA_DISPATCHES,
    DCA_MAKESPAN,
    DCA_SPOT_CHECKS,
    DCA_SUBMITS,
    DCA_TIMEOUTS,
)
from repro.obs.recorder import Recorder
from repro.obs.recorder import active as active_recorder
from repro.sim.rng import RngRegistry


class ColumnarUnsupported(ValueError):
    """The configuration falls outside the columnar engine's regime."""


def _require_numpy() -> None:
    if np is None:  # pragma: no cover - exercised only without numpy
        raise RuntimeError(
            "the columnar engine needs numpy; install it or use repro.dca.run_dca"
        )


# ---------------------------------------------------------------------------
# Report
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ColumnarReport:
    """Aggregated results of one columnar run.

    Mirrors the Section 4.1 measures of :class:`~repro.dca.report.DcaReport`
    (and its :meth:`as_dict` keys exactly), but holds aggregates instead
    of a million per-task records.  Per-task means cover *completed*
    tasks only, matching the DES report's records-based aggregation;
    under a ``max_time`` horizon ``tasks_completed`` can fall short of
    ``tasks_submitted`` and the means are ``nan`` when nothing finished.
    """

    strategy: str
    tasks_submitted: int
    tasks_completed: int
    tasks_correct: int
    total_jobs: int
    max_jobs_per_task: int
    mean_response_time: float
    max_response_time: float
    mean_waves: float
    makespan: float
    jobs_timed_out: int
    seed: int
    spot_checks: int = 0
    nodes_blacklisted: int = 0
    nodes_joined: int = 0
    nodes_departed: int = 0

    @property
    def system_reliability(self) -> float:
        if not self.tasks_completed:
            return math.nan
        return self.tasks_correct / self.tasks_completed

    @property
    def cost_factor(self) -> float:
        if not self.tasks_completed:
            return math.nan
        return self.total_jobs / self.tasks_completed

    def as_dict(self) -> Dict[str, float]:
        """Flat dict with the same keys as :meth:`DcaReport.as_dict`."""
        return {
            "strategy": self.strategy,
            "tasks": self.tasks_completed,
            "reliability": self.system_reliability,
            "cost_factor": self.cost_factor,
            "max_jobs": self.max_jobs_per_task,
            "mean_response_time": self.mean_response_time,
            "max_response_time": self.max_response_time,
            "mean_waves": self.mean_waves,
            "makespan": self.makespan,
        }

    def summary(self) -> str:
        lines = [
            f"strategy                {self.strategy}",
            f"tasks completed         {self.tasks_completed} / {self.tasks_submitted}",
            f"time to complete        {self.makespan:.2f}",
            f"total jobs              {self.total_jobs}",
            f"avg jobs per task       {self.cost_factor:.3f}",
            f"max jobs for any task   {self.max_jobs_per_task}",
            f"tasks correct           {self.tasks_correct}"
            f"  (system reliability {self.system_reliability:.4f})",
            f"avg response time       {self.mean_response_time:.3f}",
            f"max response time       {self.max_response_time:.3f}",
        ]
        if self.jobs_timed_out:
            lines.append(f"jobs timed out          {self.jobs_timed_out}")
        if self.spot_checks:
            lines.append(f"spot checks issued      {self.spot_checks}")
            lines.append(f"nodes blacklisted       {self.nodes_blacklisted}")
        if self.nodes_joined or self.nodes_departed:
            lines.append(
                f"churn                   +{self.nodes_joined} / -{self.nodes_departed}"
            )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Vectorised deciders
# ---------------------------------------------------------------------------

#: decider(strategy, true_votes, false_votes) ->
#:     (accept_mask, accepted_is_true, more_jobs)
#: All three outputs are columns over the active tasks; ``more_jobs`` is
#: only meaningful where ``accept_mask`` is False.
_Decider = Callable[[RedundancyStrategy, "np.ndarray", "np.ndarray"], Tuple]

_DECIDERS: Dict[Type[RedundancyStrategy], _Decider] = {}


def _decider(cls: Type[RedundancyStrategy]):
    def register(fn: _Decider) -> _Decider:
        _DECIDERS[cls] = fn
        return fn

    return register


@_decider(IterativeRedundancy)
def _decide_iterative(strategy, a, b):
    # decide(): accept when |a - b| >= d (with any response); else
    # dispatch d - margin (a full d when every job so far was silent).
    margin = np.abs(a - b)
    accept = (margin >= strategy.d) & ((a + b) > 0)
    return accept, a > b, strategy.d - margin


@_decider(ProgressiveRedundancy)
def _decide_progressive(strategy, a, b):
    # decide(): accept once one value holds the consensus; else dispatch
    # the leader's deficit (ties lead with the False value, matching
    # VoteState.ranked()'s repr ordering, but the deficit is the same).
    leader = np.maximum(a, b)
    accept = leader >= strategy.consensus
    return accept, a > b, strategy.consensus - leader


@_decider(TraditionalRedundancy)
def _decide_traditional(strategy, a, b):
    # decide(): re-issue silent jobs until k responses, then majority (k
    # odd, binary model: the plurality leader is the majority).
    responses = a + b
    accept = responses >= strategy.k
    return accept, a > b, strategy.k - responses


@_decider(ComplexIterativeRedundancy)
def _decide_complex(strategy, a, b):
    # decide(): accept when leader - runner_up >= d(r, R, 0); else
    # dispatch max(1, d0 + runner_up) - leader (a full max(1, d0) when
    # no job has responded yet).
    hi = np.maximum(a, b)
    lo = np.minimum(a, b)
    d0 = strategy._required_margin
    responded = (a + b) > 0
    accept = responded & ((hi - lo) >= d0)
    more = np.where(responded, np.maximum(1, d0 + lo) - hi, max(1, d0))
    return accept, a > b, more


def _decide_fallback(strategy, a, b):
    """Per-task decide through a real :class:`VoteState`.

    The escape hatch for strategies without a vectorised decider: build
    each active task's binary vote and let the strategy's own
    ``decide()`` run.  O(active tasks) Python per wave, but the columnar
    tallies stay the single source of truth.
    """
    accept = np.zeros(a.shape[0], dtype=bool)
    value = np.zeros(a.shape[0], dtype=bool)
    more = np.zeros(a.shape[0], dtype=np.int64)
    for i in range(a.shape[0]):
        vote = VoteState.binary(int(a[i]), int(b[i]))
        decision = strategy.decide(vote)
        if decision.done:
            accept[i] = True
            value[i] = bool(decision.accepted)
        else:
            more[i] = decision.more_jobs
    return accept, value, more


# ---------------------------------------------------------------------------
# Regime kernels (vectorised + scalar fallbacks, the decider pattern)
# ---------------------------------------------------------------------------

#: name -> vectorised kernel.  The engine always dispatches through this
#: table so tests can swap in the scalar fallback from
#: ``_KERNEL_FALLBACKS`` and assert byte-identical reports -- both
#: implementations consume the *same* pre-drawn arrays, so any
#: divergence is a kernel bug, not RNG drift.
_KERNELS: Dict[str, Callable] = {}
_KERNEL_FALLBACKS: Dict[str, Callable] = {}


def _kernel(name: str, fallback: Callable):
    def register(fn: Callable) -> Callable:
        _KERNELS[name] = fn
        _KERNEL_FALLBACKS[name] = fallback
        return fn

    return register


def _pool_compact_fallback(reliability, speed, ids, keep, new_rel, new_speed, new_ids):
    """Scalar mirror of the churn pool compaction: keep, then append."""
    out_rel = [float(reliability[i]) for i in range(reliability.shape[0]) if keep[i]]
    out_speed = [float(speed[i]) for i in range(speed.shape[0]) if keep[i]]
    out_ids = [int(ids[i]) for i in range(ids.shape[0]) if keep[i]]
    for i in range(new_rel.shape[0]):
        out_rel.append(float(new_rel[i]))
        out_speed.append(float(new_speed[i]))
        out_ids.append(int(new_ids[i]))
    return (
        np.asarray(out_rel, dtype=np.float64),
        np.asarray(out_speed, dtype=np.float64),
        np.asarray(out_ids, dtype=np.int64),
    )


@_kernel("pool_compact", _pool_compact_fallback)
def _pool_compact(reliability, speed, ids, keep, new_rel, new_speed, new_ids):
    """Apply one churn batch to the pool columns: departures drop rows
    (boolean keep-mask), arrivals append rows.  Returns the new columns."""
    return (
        np.concatenate((reliability[keep], new_rel)),
        np.concatenate((speed[keep], new_speed)),
        np.concatenate((ids[keep], new_ids)),
    )


def _spot_tally_fallback(ids, passed, passes, fails):
    """Scalar mirror of the spot-check tally: one manager call per check."""
    for i in range(ids.shape[0]):
        if passed[i]:
            passes[ids[i]] += 1
        else:
            fails[ids[i]] += 1


@_kernel("spot_tally", _spot_tally_fallback)
def _spot_tally(ids, passed, passes, fails):
    """Fold one wave's spot-check outcomes into the per-node tallies.

    In-place, duplicate-safe (``np.add.at``): the exact column analogue
    of :meth:`CredibilityManager.spot_check` called once per check.
    """
    np.add.at(passes, ids[passed], 1)
    np.add.at(fails, ids[~passed], 1)


def _horizon_cut_fallback(start, span, horizon):
    """Scalar mirror of the horizon truncation mask."""
    out = np.zeros(start.shape[0], dtype=bool)
    for i in range(start.shape[0]):
        out[i] = start[i] + span[i] > horizon
    return out


@_kernel("horizon_cut", _horizon_cut_fallback)
def _horizon_cut(start, span, horizon):
    """Which active tasks' waves end past the horizon (truncated).

    Matches the DES clock rule exactly: events *at* the horizon still
    fire (:meth:`EventQueue.pop_due` stops strictly after ``limit``), so
    a wave is truncated only when its slowest job lands strictly later.
    """
    return start + span > horizon


# ---------------------------------------------------------------------------
# Engine
# ---------------------------------------------------------------------------


def _validate(config: DcaConfig) -> None:
    model = config.failure_model
    if model is not None and type(model) is not ByzantineCollusion:
        raise ColumnarUnsupported(
            "the columnar engine models the binary colluding-Byzantine "
            f"failure model only, got {type(model).__name__}; use run_dca"
        )
    if is_node_aware(config.strategy):
        raise ColumnarUnsupported(
            "node-aware strategies need per-node bookkeeping; use run_dca"
        )


def run_columnar_dca(
    config: DcaConfig,
    recorder: Optional[Recorder] = None,
    *,
    max_waves: int = 10_000,
) -> ColumnarReport:
    """Run one DCA computation with columnar batch state.

    Args:
        config: The run configuration (same class the DES takes); see
            :class:`ColumnarUnsupported` for the supported regime.
        recorder: Optional telemetry recorder; receives run-level
            aggregates (submits, dispatches, timeouts, accepts, makespan).
        max_waves: Runaway guard; a healthy run needs a handful of waves.

    Returns:
        A :class:`ColumnarReport` with the Section 4.1 measures.
    """
    report, _ = _run_columnar(config, recorder, max_waves, collect_columns=False)
    return report


def run_columnar_dca_columns(
    config: DcaConfig,
    recorder: Optional[Recorder] = None,
    *,
    max_waves: int = 10_000,
) -> Tuple[ColumnarReport, Dict[str, "np.ndarray"]]:
    """Like :func:`run_columnar_dca`, but also return per-task columns.

    The columns cover *completed* tasks in task order --
    ``response_time`` (float64), ``jobs_used`` / ``waves`` (int64) and
    ``correct`` (bool) -- the raw material the shared-memory shard
    transport ships instead of pickled payloads (see
    :mod:`repro.parallel.shm`).
    """
    return _run_columnar(config, recorder, max_waves, collect_columns=True)


def _run_columnar(
    config: DcaConfig,
    recorder: Optional[Recorder],
    max_waves: int,
    *,
    collect_columns: bool,
) -> Tuple[ColumnarReport, Dict[str, "np.ndarray"]]:
    _require_numpy()
    _validate(config)
    strategy = config.strategy
    decider = _DECIDERS.get(type(strategy), _decide_fallback)

    registry = RngRegistry(config.seed).spawn("columnar")
    rng_nodes = np.random.default_rng(registry.spawn("nodes").seed)
    rng_select = np.random.default_rng(registry.spawn("selection").seed)
    rng_failures = np.random.default_rng(registry.spawn("failures").seed)
    rng_durations = np.random.default_rng(registry.spawn("durations").seed)
    # Spawn seeds are stateless name hashes, so these two extra streams
    # cannot perturb the four legacy ones: the contention-free path draws
    # exactly the sequence it drew before churn/spot-check support.
    rng_churn = np.random.default_rng(registry.spawn("churn").seed)
    rng_spot = np.random.default_rng(registry.spawn("spot-checks").seed)

    tasks = config.tasks
    timeout = config.effective_timeout
    silent_prob = config.unresponsive_prob
    spot_rate = config.spot_check_rate
    horizon = config.max_time
    arrival_rate = config.arrival_rate
    departure_rate = config.departure_rate
    has_churn = bool(arrival_rate or departure_rate)
    has_spot = spot_rate > 0.0

    # Struct-of-arrays node pool: one column per node attribute.  A
    # homogeneous pool (fixed reliability, no speed spread) collapses to
    # scalars: per-job draws are then iid and no node indexing is needed.
    # Churn forces real columns even when homogeneous -- the pool's
    # *membership* varies over time -- plus a stable-id column so
    # spot-check tallies survive compaction.
    distribution = config.reliability_distribution
    homogeneous = config.speed_spread == 0.0 and not _draws(distribution)
    track_nodes = not homogeneous or has_churn
    node_reliability = None
    node_speed = None
    node_ids = None
    if homogeneous:
        scalar_reliability = distribution.sample(rng_failures)  # no draw
        if has_churn:
            node_reliability = np.full(config.nodes, float(scalar_reliability))
            node_speed = np.ones(config.nodes, dtype=np.float64)
    else:
        node_reliability = np.asarray(
            [distribution.sample(_NumpyRandom(rng_nodes)) for _ in range(config.nodes)],
            dtype=np.float64,
        )
        node_speed = 1.0 + config.speed_spread * rng_nodes.uniform(
            -1.0, 1.0, config.nodes
        )
        scalar_reliability = 0.0
    if has_churn:
        node_ids = np.arange(config.nodes, dtype=np.int64)
    next_node_id = config.nodes

    # Grow-only per-node spot-check tallies, indexed by stable node id
    # (== pool position when there is no churn).
    spot_passes = spot_fails = None
    if has_spot:
        spot_passes = np.zeros(config.nodes, dtype=np.int64)
        spot_fails = np.zeros(config.nodes, dtype=np.int64)

    # Per-task columns (the struct-of-arrays _TaskState).
    true_votes = np.zeros(tasks, dtype=np.int64)
    false_votes = np.zeros(tasks, dtype=np.int64)
    jobs_used = np.zeros(tasks, dtype=np.int64)
    waves = np.zeros(tasks, dtype=np.int64)
    clock = np.zeros(tasks, dtype=np.float64)
    accepted_true = np.zeros(tasks, dtype=bool)
    completed = np.zeros(tasks, dtype=bool)

    active = np.arange(tasks, dtype=np.int64)
    pending = np.full(tasks, strategy.initial_jobs(), dtype=np.int64)

    rec = active_recorder(recorder)
    if rec is not None:
        rec.count(DCA_SUBMITS, tasks)

    total_dispatched = 0
    timed_out = 0
    spot_checks = 0
    joins = 0
    departures = 0
    frontier = 0.0  # global clock: the latest wave-end seen so far
    churn_clock = 0.0  # pool state is current up to this time
    wave = 0
    while active.size:
        wave += 1
        if wave > max_waves:
            raise RuntimeError(
                f"columnar run exceeded {max_waves} waves; "
                "the strategy may not be converging"
            )

        # -- churn step: bring the pool forward to the global frontier.
        # Wave boundaries are the model's churn resolution: departures
        # drop uniform rows, arrivals append freshly drawn nodes, both
        # Poisson in the frontier time elapsed since the last step.
        if has_churn and wave > 1:
            now = frontier if horizon is None else min(frontier, horizon)
            dt = now - churn_clock
            churn_clock = now
            pool_size = node_reliability.shape[0]
            n_dep = 0
            n_arr = 0
            if departure_rate and dt > 0.0:
                # The DES departure event only fires while >1 node is
                # alive; the batch equivalent caps at pool_size - 1.
                n_dep = min(int(rng_churn.poisson(departure_rate * dt)), pool_size - 1)
            if arrival_rate and dt > 0.0:
                n_arr = int(rng_churn.poisson(arrival_rate * dt))
            if n_dep or n_arr:
                keep = np.ones(pool_size, dtype=bool)
                if n_dep:
                    gone = rng_churn.choice(pool_size, size=n_dep, replace=False)
                    keep[gone] = False
                if n_arr:
                    new_rel = np.asarray(
                        [
                            distribution.sample(_NumpyRandom(rng_churn))
                            for _ in range(n_arr)
                        ],
                        dtype=np.float64,
                    )
                    if config.speed_spread > 0.0:
                        new_speed = 1.0 + config.speed_spread * rng_churn.uniform(
                            -1.0, 1.0, n_arr
                        )
                    else:
                        new_speed = np.ones(n_arr, dtype=np.float64)
                    new_ids = np.arange(
                        next_node_id, next_node_id + n_arr, dtype=np.int64
                    )
                    next_node_id += n_arr
                    if has_spot:
                        spot_passes = np.concatenate(
                            (spot_passes, np.zeros(n_arr, dtype=np.int64))
                        )
                        spot_fails = np.concatenate(
                            (spot_fails, np.zeros(n_arr, dtype=np.int64))
                        )
                else:
                    new_rel = np.empty(0, dtype=np.float64)
                    new_speed = np.empty(0, dtype=np.float64)
                    new_ids = np.empty(0, dtype=np.int64)
                node_reliability, node_speed, node_ids = _KERNELS["pool_compact"](
                    node_reliability, node_speed, node_ids, keep, new_rel, new_speed, new_ids
                )
                departures += n_dep
                joins += n_arr

        counts = pending[active]
        segments = np.concatenate(([0], np.cumsum(counts)[:-1]))
        jobs = int(counts.sum())
        total_dispatched += jobs
        pool_size = node_reliability.shape[0] if track_nodes else config.nodes

        # Job draws, one column per quantity over this wave's jobs.
        if track_nodes:
            node_index = rng_select.integers(0, pool_size, jobs)
            reliability = node_reliability[node_index]
            speed = node_speed[node_index]
        else:
            reliability = scalar_reliability
            speed = 1.0
        silent = (
            rng_failures.random(jobs) < silent_prob
            if silent_prob
            else np.zeros(jobs, dtype=bool)
        )
        correct = rng_failures.random(jobs) < reliability
        duration = rng_durations.uniform(config.duration_low, config.duration_high, jobs)
        duration = duration * speed
        # A job responds only if the node speaks up *and* beats the
        # deadline (the DES deadline event outruns a same-time completion).
        responded = ~silent & (duration < timeout)
        response_time = np.where(responded, duration, timeout)

        # -- spot-checks: replay the task server's assignment gate.  Every
        # assignment attempt draws once; a diverted slot is re-assigned
        # and draws again, so the rounds shrink geometrically.  All
        # spot-related randomness comes from its own stream, so enabling
        # spot-checks never perturbs the task outcome draws above.
        if has_spot:
            start = clock[active]  # this wave's dispatch time, per task
            spot_starts = []
            pending_starts = np.repeat(start, counts)
            while pending_starts.size:
                gate = rng_spot.random(pending_starts.size)
                pending_starts = pending_starts[gate < spot_rate]
                if pending_starts.size:
                    spot_starts.append(pending_starts)
            if spot_starts:
                spot_start = np.concatenate(spot_starts)
                n_spot = spot_start.shape[0]
                spot_checks += n_spot
                total_dispatched += n_spot
                if track_nodes:
                    spot_index = rng_spot.integers(0, pool_size, n_spot)
                    spot_reliability = node_reliability[spot_index]
                    spot_speed = node_speed[spot_index]
                else:
                    spot_index = rng_spot.integers(0, config.nodes, n_spot)
                    spot_reliability = scalar_reliability
                    spot_speed = 1.0
                spot_silent = (
                    rng_spot.random(n_spot) < silent_prob
                    if silent_prob
                    else np.zeros(n_spot, dtype=bool)
                )
                spot_correct = rng_spot.random(n_spot) < spot_reliability
                spot_duration = (
                    rng_spot.uniform(config.duration_low, config.duration_high, n_spot)
                    * spot_speed
                )
                spot_responded = ~spot_silent & (spot_duration < timeout)
                # The server learns an outcome when its event fires: the
                # completion (pass or wrong answer) or the deadline
                # (silent / too slow -> also a timed-out job).  Under a
                # horizon, events past it never fire.
                if horizon is None:
                    completion_seen = np.ones(n_spot, dtype=bool)
                    deadline_seen = np.ones(n_spot, dtype=bool)
                else:
                    completion_seen = spot_start + spot_duration <= horizon
                    deadline_seen = spot_start + timeout <= horizon
                spot_timed_out = ~spot_responded & deadline_seen
                timed_out += int(spot_timed_out.sum())
                seen = np.where(spot_responded, completion_seen, deadline_seen)
                passed = spot_responded & spot_correct
                ids = node_ids[spot_index] if has_churn else spot_index
                _KERNELS["spot_tally"](
                    ids[seen], passed[seen], spot_passes, spot_fails
                )

        # Fold the wave into the tallies with segment reductions.
        true_wave = np.add.reduceat((responded & correct).astype(np.int64), segments)
        false_wave = np.add.reduceat((responded & ~correct).astype(np.int64), segments)
        span = np.maximum.reduceat(response_time, segments)

        if horizon is not None:
            truncated = _KERNELS["horizon_cut"](clock[active], span, horizon)
        else:
            truncated = None
        if truncated is not None and truncated.any():
            # Truncated waves were dispatched (counted above) but resolve
            # past the horizon: no votes land, no decision happens, and
            # their deadline events never fire (a wave with any timed-out
            # job spans the full timeout, which the cut proves is past
            # the horizon) -- so they add nothing to jobs_timed_out.
            live = ~truncated
            live_tasks = active[live]
            wave_end = clock[active] + span
            responded_per_task = np.add.reduceat(responded.astype(np.int64), segments)
            timed_out += int((counts[live] - responded_per_task[live]).sum())
            true_votes[live_tasks] += true_wave[live]
            false_votes[live_tasks] += false_wave[live]
            clock[live_tasks] += span[live]
            jobs_used[live_tasks] += counts[live]
            waves[live_tasks] += 1
            frontier = max(frontier, float(wave_end.max()))
            active = live_tasks
            if not active.size:
                break
            accept, value, more = decider(
                strategy, true_votes[active], false_votes[active]
            )
        else:
            true_votes[active] += true_wave
            false_votes[active] += false_wave
            timed_out += jobs - int(responded.sum())
            # Wave-synchronous clock: the wave resolves at its slowest job.
            clock[active] += span
            jobs_used[active] += counts
            waves[active] += 1
            frontier = max(frontier, float(clock[active].max()))
            accept, value, more = decider(
                strategy, true_votes[active], false_votes[active]
            )
        done = active[accept]
        accepted_true[done] = value[accept]
        completed[done] = True
        pending[active] = more
        active = active[~accept]

    completed_count = int(completed.sum())
    if horizon is not None and completed_count < tasks:
        # Incomplete at the horizon: the DES clock stops exactly there.
        makespan = float(horizon)
    elif completed_count:
        # All done (or no horizon): the run ends at the last decision.
        makespan = float(clock[completed].max())
    else:
        makespan = 0.0
    if rec is not None:
        rec.count(DCA_DISPATCHES, total_dispatched)
        rec.count(DCA_TIMEOUTS, timed_out)
        rec.count(DCA_ACCEPTS, completed_count)
        if spot_checks:
            rec.count(DCA_SPOT_CHECKS, spot_checks)
        rec.gauge(DCA_MAKESPAN, makespan)

    if completed_count:
        done_clock = clock[completed]
        mean_response = float(done_clock.mean())
        max_response = float(done_clock.max())
        mean_waves = float(waves[completed].mean())
        total_jobs = int(jobs_used[completed].sum())
        max_jobs = int(jobs_used[completed].max())
    else:
        # The DES report yields nan means over zero records, 0 extremes.
        mean_response = math.nan
        max_response = math.nan
        mean_waves = math.nan
        total_jobs = 0
        max_jobs = 0
    report = ColumnarReport(
        strategy=strategy.describe(),
        tasks_submitted=tasks,
        tasks_completed=completed_count,
        tasks_correct=int(accepted_true[completed].sum()),
        total_jobs=total_jobs,
        max_jobs_per_task=max_jobs,
        mean_response_time=mean_response,
        max_response_time=max_response,
        mean_waves=mean_waves,
        makespan=makespan,
        jobs_timed_out=timed_out,
        seed=config.seed,
        spot_checks=spot_checks,
        nodes_blacklisted=int((spot_fails > 0).sum()) if has_spot else 0,
        nodes_joined=joins,
        nodes_departed=departures,
    )
    columns: Dict[str, "np.ndarray"] = {}
    if collect_columns:
        columns = {
            "response_time": clock[completed],
            "jobs_used": jobs_used[completed],
            "waves": waves[completed],
            "correct": accepted_true[completed],
        }
    return report, columns


# ---------------------------------------------------------------------------
# Reliability-distribution bridging
# ---------------------------------------------------------------------------


class _NumpyRandom:
    """Just enough of the ``random.Random`` surface for distributions.

    :class:`~repro.core.distributions.ReliabilityDistribution` samplers
    take a ``random.Random``; this adapter lets them draw from a seeded
    numpy generator instead, so the node columns come from the columnar
    seed family.
    """

    def __init__(self, rng) -> None:
        self._rng = rng

    def random(self) -> float:
        return float(self._rng.random())

    def uniform(self, low: float, high: float) -> float:
        return float(self._rng.uniform(low, high))

    def gauss(self, mu: float, sigma: float) -> float:
        return float(self._rng.normal(mu, sigma))

    def betavariate(self, alpha: float, beta: float) -> float:
        return float(self._rng.beta(alpha, beta))

    def choice(self, seq):
        return seq[int(self._rng.integers(0, len(seq)))]


def _draws(distribution) -> bool:
    """Whether sampling the distribution consumes randomness.

    Fixed reliabilities return their constant without drawing, so a
    fixed homogeneous pool needs no node columns at all; anything else
    gets a per-node reliability column.
    """
    probe = _CountingRandom()
    distribution.sample(probe)
    return probe.calls > 0


class _CountingRandom:
    """Counts draw calls without yielding randomness (probe double)."""

    def __init__(self) -> None:
        self.calls = 0

    def __getattr__(self, name: str):
        def counted(*args, **kwargs):
            self.calls += 1
            if name == "choice":
                return args[0][0]
            return 0.5

        return counted
