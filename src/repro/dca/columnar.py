"""Columnar wave-batched DCA engine for million-task runs.

The object-per-job DES (:mod:`repro.dca.simulation`) tops out around a
few thousand tasks per second: every job is a Python object, every vote a
dict update, every completion a heap event.  This module replaces that
churn with struct-of-arrays state -- one numpy column per task for the
``True``/``False`` tallies, silent counts, wave clocks, and jobs used --
and advances *all* active tasks one wave at a time.

The model is the paper's own analysis regime:

* **Assumption 1 (contention-free pool):** every wave's jobs run on
  independent random nodes concurrently, so a task's wave completes at
  the slowest of its jobs and the next wave starts immediately.  Node
  contention delays *when* jobs run, never *what* they report, so
  reliability, cost factor, and wave counts are exactly those of the
  DES; response times and makespan are the contention-free values.
* **Assumption 4 (binary votes):** the colluding-Byzantine worst case,
  :class:`~repro.dca.failures.ByzantineCollusion`, where each task has
  one true and one colluding wrong value.  Tallies are two int columns.

Strategy decisions stay behind the existing interfaces: the built-in
strategies (iterative, progressive, traditional, complex-iterative) have
vectorised deciders that replay their ``decide(VoteState)`` arithmetic
over whole columns, and any other non-node-aware strategy falls back to
a per-task loop through a real :class:`~repro.core.types.VoteState` --
slower, but semantically the strategy's own code.

Configurations outside the regime (churn, spot-checks, node-aware
strategies, non-binary failure models, time horizons) are rejected with
:class:`ColumnarUnsupported`; use the DES for those.

Determinism: all draws come from seeded numpy generators whose seeds
derive from the config seed via :class:`~repro.sim.rng.RngRegistry`
spawn names, so same-config runs are byte-identical (given a numpy
version) and the columnar engine never perturbs the DES streams.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple, Type

try:  # gated: the container/CI images ship numpy, but it stays optional
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None  # type: ignore[assignment]

from repro.core.iterative import IterativeRedundancy
from repro.core.iterative_complex import ComplexIterativeRedundancy
from repro.core.progressive import ProgressiveRedundancy
from repro.core.strategy import RedundancyStrategy, is_node_aware
from repro.core.traditional import TraditionalRedundancy
from repro.core.types import VoteState
from repro.dca.config import DcaConfig
from repro.dca.failures import ByzantineCollusion
from repro.obs.names import (
    DCA_ACCEPTS,
    DCA_DISPATCHES,
    DCA_MAKESPAN,
    DCA_SUBMITS,
    DCA_TIMEOUTS,
)
from repro.obs.recorder import Recorder
from repro.obs.recorder import active as active_recorder
from repro.sim.rng import RngRegistry


class ColumnarUnsupported(ValueError):
    """The configuration falls outside the columnar engine's regime."""


def _require_numpy() -> None:
    if np is None:  # pragma: no cover - exercised only without numpy
        raise RuntimeError(
            "the columnar engine needs numpy; install it or use repro.dca.run_dca"
        )


# ---------------------------------------------------------------------------
# Report
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ColumnarReport:
    """Aggregated results of one columnar run.

    Mirrors the Section 4.1 measures of :class:`~repro.dca.report.DcaReport`
    (and its :meth:`as_dict` keys exactly), but holds aggregates instead
    of a million per-task records.
    """

    strategy: str
    tasks_submitted: int
    tasks_completed: int
    tasks_correct: int
    total_jobs: int
    max_jobs_per_task: int
    mean_response_time: float
    max_response_time: float
    mean_waves: float
    makespan: float
    jobs_timed_out: int
    seed: int

    @property
    def system_reliability(self) -> float:
        if not self.tasks_completed:
            return math.nan
        return self.tasks_correct / self.tasks_completed

    @property
    def cost_factor(self) -> float:
        if not self.tasks_completed:
            return math.nan
        return self.total_jobs / self.tasks_completed

    def as_dict(self) -> Dict[str, float]:
        """Flat dict with the same keys as :meth:`DcaReport.as_dict`."""
        return {
            "strategy": self.strategy,
            "tasks": self.tasks_completed,
            "reliability": self.system_reliability,
            "cost_factor": self.cost_factor,
            "max_jobs": self.max_jobs_per_task,
            "mean_response_time": self.mean_response_time,
            "max_response_time": self.max_response_time,
            "mean_waves": self.mean_waves,
            "makespan": self.makespan,
        }

    def summary(self) -> str:
        lines = [
            f"strategy                {self.strategy}",
            f"tasks completed         {self.tasks_completed} / {self.tasks_submitted}",
            f"time to complete        {self.makespan:.2f}",
            f"total jobs              {self.total_jobs}",
            f"avg jobs per task       {self.cost_factor:.3f}",
            f"max jobs for any task   {self.max_jobs_per_task}",
            f"tasks correct           {self.tasks_correct}"
            f"  (system reliability {self.system_reliability:.4f})",
            f"avg response time       {self.mean_response_time:.3f}",
            f"max response time       {self.max_response_time:.3f}",
        ]
        if self.jobs_timed_out:
            lines.append(f"jobs timed out          {self.jobs_timed_out}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Vectorised deciders
# ---------------------------------------------------------------------------

#: decider(strategy, true_votes, false_votes) ->
#:     (accept_mask, accepted_is_true, more_jobs)
#: All three outputs are columns over the active tasks; ``more_jobs`` is
#: only meaningful where ``accept_mask`` is False.
_Decider = Callable[[RedundancyStrategy, "np.ndarray", "np.ndarray"], Tuple]

_DECIDERS: Dict[Type[RedundancyStrategy], _Decider] = {}


def _decider(cls: Type[RedundancyStrategy]):
    def register(fn: _Decider) -> _Decider:
        _DECIDERS[cls] = fn
        return fn

    return register


@_decider(IterativeRedundancy)
def _decide_iterative(strategy, a, b):
    # decide(): accept when |a - b| >= d (with any response); else
    # dispatch d - margin (a full d when every job so far was silent).
    margin = np.abs(a - b)
    accept = (margin >= strategy.d) & ((a + b) > 0)
    return accept, a > b, strategy.d - margin


@_decider(ProgressiveRedundancy)
def _decide_progressive(strategy, a, b):
    # decide(): accept once one value holds the consensus; else dispatch
    # the leader's deficit (ties lead with the False value, matching
    # VoteState.ranked()'s repr ordering, but the deficit is the same).
    leader = np.maximum(a, b)
    accept = leader >= strategy.consensus
    return accept, a > b, strategy.consensus - leader


@_decider(TraditionalRedundancy)
def _decide_traditional(strategy, a, b):
    # decide(): re-issue silent jobs until k responses, then majority (k
    # odd, binary model: the plurality leader is the majority).
    responses = a + b
    accept = responses >= strategy.k
    return accept, a > b, strategy.k - responses


@_decider(ComplexIterativeRedundancy)
def _decide_complex(strategy, a, b):
    # decide(): accept when leader - runner_up >= d(r, R, 0); else
    # dispatch max(1, d0 + runner_up) - leader (a full max(1, d0) when
    # no job has responded yet).
    hi = np.maximum(a, b)
    lo = np.minimum(a, b)
    d0 = strategy._required_margin
    responded = (a + b) > 0
    accept = responded & ((hi - lo) >= d0)
    more = np.where(responded, np.maximum(1, d0 + lo) - hi, max(1, d0))
    return accept, a > b, more


def _decide_fallback(strategy, a, b):
    """Per-task decide through a real :class:`VoteState`.

    The escape hatch for strategies without a vectorised decider: build
    each active task's binary vote and let the strategy's own
    ``decide()`` run.  O(active tasks) Python per wave, but the columnar
    tallies stay the single source of truth.
    """
    accept = np.zeros(a.shape[0], dtype=bool)
    value = np.zeros(a.shape[0], dtype=bool)
    more = np.zeros(a.shape[0], dtype=np.int64)
    for i in range(a.shape[0]):
        vote = VoteState.binary(int(a[i]), int(b[i]))
        decision = strategy.decide(vote)
        if decision.done:
            accept[i] = True
            value[i] = bool(decision.accepted)
        else:
            more[i] = decision.more_jobs
    return accept, value, more


# ---------------------------------------------------------------------------
# Engine
# ---------------------------------------------------------------------------


def _validate(config: DcaConfig) -> None:
    model = config.failure_model
    if model is not None and type(model) is not ByzantineCollusion:
        raise ColumnarUnsupported(
            "the columnar engine models the binary colluding-Byzantine "
            f"failure model only, got {type(model).__name__}; use run_dca"
        )
    if config.arrival_rate or config.departure_rate:
        raise ColumnarUnsupported("churn is not supported; use run_dca")
    if config.spot_check_rate:
        raise ColumnarUnsupported("spot-checks are not supported; use run_dca")
    if config.max_time is not None:
        raise ColumnarUnsupported("max_time horizons are not supported; use run_dca")
    if is_node_aware(config.strategy):
        raise ColumnarUnsupported(
            "node-aware strategies need per-node bookkeeping; use run_dca"
        )


def run_columnar_dca(
    config: DcaConfig,
    recorder: Optional[Recorder] = None,
    *,
    max_waves: int = 10_000,
) -> ColumnarReport:
    """Run one DCA computation with columnar batch state.

    Args:
        config: The run configuration (same class the DES takes); see
            :class:`ColumnarUnsupported` for the supported regime.
        recorder: Optional telemetry recorder; receives run-level
            aggregates (submits, dispatches, timeouts, accepts, makespan).
        max_waves: Runaway guard; a healthy run needs a handful of waves.

    Returns:
        A :class:`ColumnarReport` with the Section 4.1 measures.
    """
    _require_numpy()
    _validate(config)
    strategy = config.strategy
    decider = _DECIDERS.get(type(strategy), _decide_fallback)

    registry = RngRegistry(config.seed).spawn("columnar")
    rng_nodes = np.random.default_rng(registry.spawn("nodes").seed)
    rng_select = np.random.default_rng(registry.spawn("selection").seed)
    rng_failures = np.random.default_rng(registry.spawn("failures").seed)
    rng_durations = np.random.default_rng(registry.spawn("durations").seed)

    tasks = config.tasks
    timeout = config.effective_timeout
    silent_prob = config.unresponsive_prob

    # Struct-of-arrays node pool: one column per node attribute.  A
    # homogeneous pool (fixed reliability, no speed spread) collapses to
    # scalars: per-job draws are then iid and no node indexing is needed.
    distribution = config.reliability_distribution
    homogeneous = config.speed_spread == 0.0 and not _draws(distribution)
    if homogeneous:
        node_reliability = None
        node_speed = None
        scalar_reliability = distribution.sample(rng_failures)  # no draw
    else:
        node_reliability = np.asarray(
            [distribution.sample(_NumpyRandom(rng_nodes)) for _ in range(config.nodes)],
            dtype=np.float64,
        )
        node_speed = 1.0 + config.speed_spread * rng_nodes.uniform(
            -1.0, 1.0, config.nodes
        )
        scalar_reliability = 0.0

    # Per-task columns (the struct-of-arrays _TaskState).
    true_votes = np.zeros(tasks, dtype=np.int64)
    false_votes = np.zeros(tasks, dtype=np.int64)
    jobs_used = np.zeros(tasks, dtype=np.int64)
    waves = np.zeros(tasks, dtype=np.int64)
    clock = np.zeros(tasks, dtype=np.float64)
    accepted_true = np.zeros(tasks, dtype=bool)

    active = np.arange(tasks, dtype=np.int64)
    pending = np.full(tasks, strategy.initial_jobs(), dtype=np.int64)

    rec = active_recorder(recorder)
    if rec is not None:
        rec.count(DCA_SUBMITS, tasks)

    total_dispatched = 0
    timed_out = 0
    wave = 0
    while active.size:
        wave += 1
        if wave > max_waves:
            raise RuntimeError(
                f"columnar run exceeded {max_waves} waves; "
                "the strategy may not be converging"
            )
        counts = pending[active]
        segments = np.concatenate(([0], np.cumsum(counts)[:-1]))
        jobs = int(counts.sum())
        total_dispatched += jobs

        # Job draws, one column per quantity over this wave's jobs.
        if homogeneous:
            reliability = scalar_reliability
            speed = 1.0
        else:
            node_index = rng_select.integers(0, config.nodes, jobs)
            reliability = node_reliability[node_index]
            speed = node_speed[node_index]
        silent = (
            rng_failures.random(jobs) < silent_prob
            if silent_prob
            else np.zeros(jobs, dtype=bool)
        )
        correct = rng_failures.random(jobs) < reliability
        duration = rng_durations.uniform(config.duration_low, config.duration_high, jobs)
        duration = duration * speed
        # A job responds only if the node speaks up *and* beats the
        # deadline (the DES deadline event outruns a same-time completion).
        responded = ~silent & (duration < timeout)
        response_time = np.where(responded, duration, timeout)

        # Fold the wave into the tallies with segment reductions.
        true_wave = np.add.reduceat((responded & correct).astype(np.int64), segments)
        false_wave = np.add.reduceat((responded & ~correct).astype(np.int64), segments)
        true_votes[active] += true_wave
        false_votes[active] += false_wave
        timed_out += jobs - int(responded.sum())
        # Wave-synchronous clock: the wave resolves at its slowest job.
        clock[active] += np.maximum.reduceat(response_time, segments)
        jobs_used[active] += counts
        waves[active] += 1

        accept, value, more = decider(
            strategy, true_votes[active], false_votes[active]
        )
        done = active[accept]
        accepted_true[done] = value[accept]
        pending[active] = more
        active = active[~accept]

    makespan = float(clock.max()) if tasks else 0.0
    if rec is not None:
        rec.count(DCA_DISPATCHES, total_dispatched)
        rec.count(DCA_TIMEOUTS, timed_out)
        rec.count(DCA_ACCEPTS, tasks)
        rec.gauge(DCA_MAKESPAN, makespan)

    return ColumnarReport(
        strategy=strategy.describe(),
        tasks_submitted=tasks,
        tasks_completed=tasks,
        tasks_correct=int(accepted_true.sum()),
        total_jobs=int(jobs_used.sum()),
        max_jobs_per_task=int(jobs_used.max()) if tasks else 0,
        mean_response_time=float(clock.mean()) if tasks else 0.0,
        max_response_time=float(clock.max()) if tasks else 0.0,
        mean_waves=float(waves.mean()) if tasks else 0.0,
        makespan=makespan,
        jobs_timed_out=timed_out,
        seed=config.seed,
    )


# ---------------------------------------------------------------------------
# Reliability-distribution bridging
# ---------------------------------------------------------------------------


class _NumpyRandom:
    """Just enough of the ``random.Random`` surface for distributions.

    :class:`~repro.core.distributions.ReliabilityDistribution` samplers
    take a ``random.Random``; this adapter lets them draw from a seeded
    numpy generator instead, so the node columns come from the columnar
    seed family.
    """

    def __init__(self, rng) -> None:
        self._rng = rng

    def random(self) -> float:
        return float(self._rng.random())

    def uniform(self, low: float, high: float) -> float:
        return float(self._rng.uniform(low, high))

    def gauss(self, mu: float, sigma: float) -> float:
        return float(self._rng.normal(mu, sigma))

    def betavariate(self, alpha: float, beta: float) -> float:
        return float(self._rng.beta(alpha, beta))

    def choice(self, seq):
        return seq[int(self._rng.integers(0, len(seq)))]


def _draws(distribution) -> bool:
    """Whether sampling the distribution consumes randomness.

    Fixed reliabilities return their constant without drawing, so a
    fixed homogeneous pool needs no node columns at all; anything else
    gets a per-node reliability column.
    """
    probe = _CountingRandom()
    distribution.sample(probe)
    return probe.calls > 0


class _CountingRandom:
    """Counts draw calls without yielding randomness (probe double)."""

    def __init__(self) -> None:
        self.calls = 0

    def __getattr__(self, name: str):
        def counted(*args, **kwargs):
            self.calls += 1
            if name == "choice":
                return args[0][0]
            return 0.5

        return counted
