"""The paper's DCA system model (Figure 1) on the discrete-event engine.

A *computation* is subdivided into *tasks*; the task server creates *jobs*
(redundant instances of a task) and assigns each to a node chosen at
random from the node pool; nodes perform jobs for a stochastic duration
and return results (or fail Byzantine-style); the server compares results
per the configured redundancy strategy and creates new jobs as needed.
Nodes may join and leave the pool (churn).

Entry point::

    from repro.core import IterativeRedundancy
    from repro.dca import DcaConfig, run_dca

    report = run_dca(DcaConfig(
        tasks=50_000, nodes=2_000, reliability=0.7, seed=42,
        strategy=IterativeRedundancy(d=4),
    ))
    print(report.summary())
"""

from repro.dca.columnar import (
    ColumnarReport,
    ColumnarUnsupported,
    run_columnar_dca,
    run_columnar_dca_columns,
)
from repro.dca.config import DcaConfig
from repro.dca.failures import (
    ByzantineCollusion,
    FailureModel,
    NonColludingFailures,
    SpotCheckEvading,
    UnresponsiveWrapper,
    CorrelatedFailures,
)
from repro.dca.checkpointing import (
    CheckpointPolicy,
    expected_completion_time,
    optimal_interval,
    simulate_job,
)
from repro.dca.node import Node
from repro.dca.pool import NodePool
from repro.dca.report import DcaReport, TaskRecord
from repro.dca.simulation import DcaSimulation, run_dca
from repro.dca.taskserver import TaskServer
from repro.dca.workload import Task, Workload

__all__ = [
    "ByzantineCollusion",
    "CheckpointPolicy",
    "ColumnarReport",
    "ColumnarUnsupported",
    "CorrelatedFailures",
    "DcaConfig",
    "DcaReport",
    "DcaSimulation",
    "FailureModel",
    "Node",
    "NodePool",
    "NonColludingFailures",
    "SpotCheckEvading",
    "Task",
    "TaskRecord",
    "TaskServer",
    "UnresponsiveWrapper",
    "Workload",
    "expected_completion_time",
    "optimal_interval",
    "run_columnar_dca",
    "run_columnar_dca_columns",
    "run_dca",
    "simulate_job",
]
