"""Failure models: what a node reports when it runs a job.

The paper's threat model (Section 2.2) is Byzantine with collusion: a
failing node reports *the same wrong result* as every other failing node
on that task, which is the worst case for voting.  Section 5.3 relaxes
this; the non-colluding model here implements that relaxation (distinct
wrong values, so plurality voting gets traction), and the correlated model
implements geographically dependent failures.

A model answers one question per job::

    value = model.report(task, node, rng)

returning the reported :class:`~repro.core.types.ResultValue` or ``None``
when the node goes silent (unresponsive).
"""

from __future__ import annotations

import abc
import random
from typing import Dict, Optional, Tuple

from repro.core.types import ResultValue
from repro.dca.node import Node
from repro.dca.workload import Task


class FailureModel(abc.ABC):
    """Decides each job's reported value."""

    @abc.abstractmethod
    def report(
        self, task: Task, node: Node, rng: random.Random
    ) -> Optional[ResultValue]:
        """The value the node reports for the task, or ``None`` if silent."""


class ByzantineCollusion(FailureModel):
    """The paper's worst case: all failures collude on one wrong value.

    A job succeeds with the node's reliability; otherwise it reports the
    task's single colluding wrong value.  Because failures are "aware of
    other nodes that failed and how they failed", every failure on a task
    is indistinguishable from every other -- the hardest setting for any
    voting scheme.
    """

    def report(
        self, task: Task, node: Node, rng: random.Random
    ) -> Optional[ResultValue]:
        if node.unresponsive_prob and rng.random() < node.unresponsive_prob:
            return None
        if rng.random() < node.reliability:
            return task.true_value
        return task.wrong_value


class NonColludingFailures(FailureModel):
    """Section 5.3 relaxation: failures report *distinct* wrong values.

    Each failed job draws a wrong value from a large space, so wrong
    answers rarely agree and the correct answer wins by plurality far more
    easily -- the paper notes the binary colluding model upper-bounds the
    failure probability of this case.

    Args:
        value_space: Number of distinct wrong values available.  Larger
            spaces make accidental agreement among failures rarer.
    """

    def __init__(self, value_space: int = 1_000_000) -> None:
        if value_space < 2:
            raise ValueError(f"value space must have at least 2 values, got {value_space}")
        self.value_space = value_space

    def report(
        self, task: Task, node: Node, rng: random.Random
    ) -> Optional[ResultValue]:
        if node.unresponsive_prob and rng.random() < node.unresponsive_prob:
            return None
        if rng.random() < node.reliability:
            return task.true_value
        return ("wrong", task.task_id, rng.randrange(self.value_space))


class SpotCheckEvading(FailureModel):
    """Byzantine nodes that answer spot-checks correctly.

    Section 5.1: "Byzantine faults cannot be reliably spot-checked, and
    malicious nodes can earn credibility and fool schemes for rating
    credibility."  This wrapper models that: on spot-check jobs (the
    sentinel task id -1) every node answers correctly with probability
    ``evasion``, so credibility systems see malicious nodes pass checks,
    raise their credibility, and then weight their colluding wrong votes
    heavily.
    """

    def __init__(self, inner: FailureModel, evasion: float = 1.0) -> None:
        if not 0.0 <= evasion <= 1.0:
            raise ValueError(f"evasion probability must lie in [0, 1], got {evasion}")
        self.inner = inner
        self.evasion = evasion

    def report(
        self, task: Task, node: Node, rng: random.Random
    ) -> Optional[ResultValue]:
        if task.task_id < 0 and rng.random() < self.evasion:
            return task.true_value
        return self.inner.report(task, node, rng)


class UnresponsiveWrapper(FailureModel):
    """Adds a global silent-failure probability on top of another model.

    Useful when unresponsiveness is a property of the environment (e.g.
    flaky PlanetLab nodes) rather than of individual nodes.
    """

    def __init__(self, inner: FailureModel, silent_prob: float) -> None:
        if not 0.0 <= silent_prob < 1.0:
            raise ValueError(f"silent probability must lie in [0, 1), got {silent_prob}")
        self.inner = inner
        self.silent_prob = silent_prob

    def report(
        self, task: Task, node: Node, rng: random.Random
    ) -> Optional[ResultValue]:
        if rng.random() < self.silent_prob:
            return None
        return self.inner.report(task, node, rng)


class CorrelatedFailures(FailureModel):
    """Section 5.3 relaxation: geographically correlated failures.

    Nodes belong to clusters (think: regions).  For each (task, cluster)
    pair, the whole cluster suffers a correlated fault event with
    probability ``cluster_fault_prob`` (a natural disaster takes out the
    region for that task); nodes in a faulted cluster fail regardless of
    their own reliability and collude on the task's wrong value.  Outside
    fault events, nodes behave per the colluding base model.

    The per-(task, cluster) draw is memoised so every node in the cluster
    sees the same event -- that is the correlation.
    """

    def __init__(
        self,
        clusters: Dict[int, int],
        cluster_fault_prob: float,
    ) -> None:
        if not 0.0 <= cluster_fault_prob < 1.0:
            raise ValueError(
                f"cluster fault probability must lie in [0, 1), got {cluster_fault_prob}"
            )
        self.clusters = dict(clusters)
        self.cluster_fault_prob = cluster_fault_prob
        self._events: Dict[Tuple[int, int], bool] = {}
        self.base = ByzantineCollusion()

    def cluster_of(self, node: Node) -> int:
        return self.clusters.get(node.node_id, 0)

    def report(
        self, task: Task, node: Node, rng: random.Random
    ) -> Optional[ResultValue]:
        cluster = self.cluster_of(node)
        key = (task.task_id, cluster)
        faulted = self._events.get(key)
        if faulted is None:
            faulted = rng.random() < self.cluster_fault_prob
            self._events[key] = faulted
        if faulted:
            return task.wrong_value
        return self.base.report(task, node, rng)

    def prune(self, task_id: int) -> None:
        """Drop memoised events for a finished task (bounds memory)."""
        stale = [key for key in self._events if key[0] == task_id]
        for key in stale:
            del self._events[key]
