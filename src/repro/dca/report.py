"""Per-task records, run-level aggregation, and JSON persistence.

Mirrors the measures the paper records for every run (Section 4.1): the
simulated time to complete the computation, the total number of jobs
generated, the average and maximum jobs per task, the number of tasks that
achieved a correct result, and the average and maximum response time per
task.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

from repro.core.types import ResultValue


@dataclass(frozen=True)
class TaskRecord:
    """The final record of one task's execution."""

    task_id: int
    value: ResultValue
    correct: bool
    jobs_used: int
    waves: int
    response_time: float
    turnaround: float


@dataclass
class DcaReport:
    """Aggregated results of one simulation run."""

    strategy: str
    tasks_submitted: int
    records: List[TaskRecord] = field(default_factory=list)
    makespan: float = 0.0
    total_jobs_dispatched: int = 0
    jobs_timed_out: int = 0
    spot_checks: int = 0
    nodes_joined: int = 0
    nodes_departed: int = 0
    seed: int = 0

    # ------------------------------------------------------------------
    # The paper's Section 4.1 measures
    # ------------------------------------------------------------------

    @property
    def tasks_completed(self) -> int:
        return len(self.records)

    @property
    def tasks_correct(self) -> int:
        """'The number of tasks that achieved a correct result.'"""
        return sum(1 for record in self.records if record.correct)

    @property
    def system_reliability(self) -> float:
        """Fraction of completed tasks with the correct result."""
        if not self.records:
            return math.nan
        return self.tasks_correct / len(self.records)

    @property
    def total_jobs(self) -> int:
        """'The total number of jobs generated' (counted per task)."""
        return sum(record.jobs_used for record in self.records)

    @property
    def cost_factor(self) -> float:
        """'The average number of jobs per task generated.'"""
        if not self.records:
            return math.nan
        return self.total_jobs / len(self.records)

    @property
    def max_jobs_per_task(self) -> int:
        """'The maximum number of jobs generated for any single task.'"""
        if not self.records:
            return 0
        return max(record.jobs_used for record in self.records)

    @property
    def mean_response_time(self) -> float:
        """'The average response time per task.'"""
        if not self.records:
            return math.nan
        return sum(record.response_time for record in self.records) / len(self.records)

    @property
    def max_response_time(self) -> float:
        """'The maximum response time for any task.'"""
        if not self.records:
            return math.nan
        return max(record.response_time for record in self.records)

    @property
    def mean_waves(self) -> float:
        if not self.records:
            return math.nan
        return sum(record.waves for record in self.records) / len(self.records)

    def reliability_confidence_interval(self, z: float = 1.96) -> tuple:
        """Normal-approximation CI on the system reliability."""
        n = len(self.records)
        if n < 2:
            return (math.nan, math.nan)
        p = self.system_reliability
        half = z * math.sqrt(max(p * (1.0 - p), 1e-12) / n)
        return (max(0.0, p - half), min(1.0, p + half))

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------

    def summary(self) -> str:
        """The Section 4.1 record block, ready to print."""
        lines = [
            f"strategy                {self.strategy}",
            f"tasks completed         {self.tasks_completed} / {self.tasks_submitted}",
            f"time to complete        {self.makespan:.2f}",
            f"total jobs              {self.total_jobs}",
            f"avg jobs per task       {self.cost_factor:.3f}",
            f"max jobs for any task   {self.max_jobs_per_task}",
            f"tasks correct           {self.tasks_correct}"
            f"  (system reliability {self.system_reliability:.4f})",
            f"avg response time       {self.mean_response_time:.3f}",
            f"max response time       {self.max_response_time:.3f}",
        ]
        if self.jobs_timed_out:
            lines.append(f"jobs timed out          {self.jobs_timed_out}")
        if self.spot_checks:
            lines.append(f"spot checks issued      {self.spot_checks}")
        if self.nodes_joined or self.nodes_departed:
            lines.append(
                f"churn                   +{self.nodes_joined} / -{self.nodes_departed}"
            )
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, float]:
        """Flat dict for tables and serialisation."""
        return {
            "strategy": self.strategy,
            "tasks": self.tasks_completed,
            "reliability": self.system_reliability,
            "cost_factor": self.cost_factor,
            "max_jobs": self.max_jobs_per_task,
            "mean_response_time": self.mean_response_time,
            "max_response_time": self.max_response_time,
            "mean_waves": self.mean_waves,
            "makespan": self.makespan,
        }

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def to_json(self, *, include_records: bool = True) -> str:
        """Serialise the full report (optionally without per-task records).

        Result values are JSON-encoded as-is, so only JSON-representable
        values (the binary model's booleans, numbers, strings, lists)
        round-trip; exotic hashables would need a custom encoder.
        """
        payload = {
            "strategy": self.strategy,
            "tasks_submitted": self.tasks_submitted,
            "makespan": self.makespan,
            "total_jobs_dispatched": self.total_jobs_dispatched,
            "jobs_timed_out": self.jobs_timed_out,
            "spot_checks": self.spot_checks,
            "nodes_joined": self.nodes_joined,
            "nodes_departed": self.nodes_departed,
            "seed": self.seed,
            "records": [asdict(record) for record in self.records]
            if include_records
            else [],
        }
        return json.dumps(payload, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "DcaReport":
        """Reconstruct a report serialised by :meth:`to_json`."""
        payload = json.loads(text)
        records = [TaskRecord(**record) for record in payload.pop("records")]
        return cls(records=records, **payload)
