"""Worker nodes: reliability, speed, and liveness state.

A node models one volunteer machine.  Its *reliability* is the probability
a job it runs returns the correct result (the failure model decides what a
failed job reports); its *speed factor* scales job durations, modelling
the heterogeneous machines of a real testbed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class Node:
    """One worker in the node pool.

    Attributes:
        node_id: Stable identity (note: a *malicious* node may later
            rejoin the pool with a fresh identity -- whitewashing -- which
            the pool models by creating a new ``Node``).
        reliability: Probability a job on this node yields the correct
            result.
        speed_factor: Multiplier on job durations (1.0 = nominal machine;
            2.0 = half speed).
        unresponsive_prob: Probability a job on this node never reports
            (the node goes silent; the server's deadline catches it).
        alive: False once the node has left the pool.
        busy: True while the node is executing a job.
    """

    node_id: int
    reliability: float
    speed_factor: float = 1.0
    unresponsive_prob: float = 0.0
    alive: bool = True
    busy: bool = False
    jobs_completed: int = field(default=0, repr=False)
    jobs_failed: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.reliability <= 1.0:
            raise ValueError(
                f"node reliability must lie in [0, 1], got {self.reliability}"
            )
        if self.speed_factor <= 0:
            raise ValueError(f"speed factor must be positive, got {self.speed_factor}")
        if not 0.0 <= self.unresponsive_prob <= 1.0:
            raise ValueError(
                f"unresponsive probability must lie in [0, 1], got {self.unresponsive_prob}"
            )

    @property
    def available(self) -> bool:
        """Eligible for job assignment right now."""
        return self.alive and not self.busy

    def job_duration(self, base_duration: float) -> float:
        """Wall-clock time this node needs for a job of nominal duration
        ``base_duration``."""
        if base_duration < 0:
            raise ValueError(f"duration must be non-negative, got {base_duration}")
        return base_duration * self.speed_factor
