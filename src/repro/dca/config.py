"""Configuration for DCA simulation runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.core.distributions import FixedReliability, ReliabilityDistribution
from repro.core.strategy import RedundancyStrategy
from repro.dca.failures import FailureModel
from repro.sim.events import QUEUE_KINDS


@dataclass
class DcaConfig:
    """Everything a DCA simulation run needs.

    Defaults mirror the paper's XDEVS setup (Section 4.1): job completion
    times uniform in [0.5, 1.5] simulated time units and average node
    reliability 0.7.  The paper uses >= 1,000,000 tasks and 10,000 nodes;
    that scale is reachable here too but the experiment harness defaults
    to smaller runs with confidence intervals (see EXPERIMENTS.md).

    Attributes:
        strategy: The redundancy strategy under test (shared across
            tasks; node-aware strategies accumulate reputation state by
            design).
        tasks: Number of independent tasks in the computation.
        nodes: Initial node-pool size.
        reliability: Either a single average node reliability in [0, 1]
            or a :class:`ReliabilityDistribution` for heterogeneous pools
            (Section 5.3).
        duration_low / duration_high: Bounds of the uniform nominal job
            duration.
        seed: Root seed; every subsystem derives its own stream.
        timeout: Job deadline.  ``None`` picks
            ``deadline_factor * duration_high`` (times the slowest speed
            factor seen); jobs silent past the deadline count as failed
            (Section 2.2).
        deadline_factor: Multiplier used when ``timeout`` is ``None``.
        unresponsive_prob: Per-job probability a node goes silent.
        failure_model: How failed jobs report.  ``None`` uses the paper's
            worst case, :class:`~repro.dca.failures.ByzantineCollusion`.
        speed_spread: Node speed factors are drawn uniformly from
            ``[1 - speed_spread, 1 + speed_spread]`` (0 = homogeneous).
        arrival_rate: Poisson rate of new volunteers joining (churn).
        departure_rate: Poisson rate of nodes quitting (churn).
        spot_check_rate: Fraction of assignments diverted to spot-check
            jobs (they consume nodes and count in dispatch/timeout
            totals; with a credibility strategy the outcomes also feed
            its reputation tallies -- pure overhead otherwise).
        max_time: Optional simulated-time horizon; ``None`` runs until the
            computation completes.
        queue: Event-queue structure for the DES -- ``"heap"`` (default)
            or ``"calendar"`` (amortised O(1) at high event density).
            Results are byte-identical either way; see ``docs/scaling.md``.
    """

    strategy: RedundancyStrategy
    tasks: int = 10_000
    nodes: int = 1_000
    reliability: Union[float, ReliabilityDistribution] = 0.7
    duration_low: float = 0.5
    duration_high: float = 1.5
    seed: int = 0
    timeout: Optional[float] = None
    deadline_factor: float = 10.0
    unresponsive_prob: float = 0.0
    failure_model: Optional[FailureModel] = None
    speed_spread: float = 0.0
    arrival_rate: float = 0.0
    departure_rate: float = 0.0
    spot_check_rate: float = 0.0
    max_time: Optional[float] = None
    queue: str = "heap"

    def __post_init__(self) -> None:
        if self.tasks < 1:
            raise ValueError(f"need at least one task, got {self.tasks}")
        if self.nodes < 1:
            raise ValueError(f"need at least one node, got {self.nodes}")
        if not 0.0 < self.duration_low <= self.duration_high:
            raise ValueError(
                f"need 0 < duration_low <= duration_high, got "
                f"[{self.duration_low}, {self.duration_high}]"
            )
        if not 0.0 <= self.unresponsive_prob < 1.0:
            raise ValueError(
                f"unresponsive probability must lie in [0, 1), got {self.unresponsive_prob}"
            )
        if not 0.0 <= self.speed_spread < 1.0:
            raise ValueError(f"speed spread must lie in [0, 1), got {self.speed_spread}")
        if self.arrival_rate < 0 or self.departure_rate < 0:
            raise ValueError("churn rates must be non-negative")
        if not 0.0 <= self.spot_check_rate < 1.0:
            raise ValueError(f"spot-check rate must lie in [0, 1), got {self.spot_check_rate}")
        if self.deadline_factor <= 1.0:
            raise ValueError(f"deadline factor must exceed 1, got {self.deadline_factor}")
        if self.queue not in QUEUE_KINDS:
            raise ValueError(
                f"unknown event queue kind {self.queue!r}; choose from {QUEUE_KINDS}"
            )

    @property
    def reliability_distribution(self) -> ReliabilityDistribution:
        if isinstance(self.reliability, ReliabilityDistribution):
            return self.reliability
        return FixedReliability(float(self.reliability))

    @property
    def effective_timeout(self) -> float:
        if self.timeout is not None:
            return self.timeout
        slowest = 1.0 + self.speed_spread
        return self.deadline_factor * self.duration_high * slowest
