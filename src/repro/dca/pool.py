"""The node pool: random selection, acquisition, and churn bookkeeping.

The paper's system model assigns each job to a node chosen *at random*
from the pool (this is what justifies assumption 1: every job has the same
failure probability).  The pool therefore supports O(1) uniform random
selection among currently available nodes, plus join/leave operations for
churn.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Optional

from repro.dca.node import Node


class NodePool:
    """Tracks nodes and hands out random available ones.

    Availability is maintained with the classic swap-remove trick: a list
    of available node ids plus an index map, giving O(1) acquire, release,
    join, and leave.
    """

    def __init__(self) -> None:
        self._nodes: Dict[int, Node] = {}
        self._available: List[int] = []
        self._available_index: Dict[int, int] = {}
        self._next_id = 0
        self.joins = 0
        self.departures = 0

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes.values())

    @property
    def available_count(self) -> int:
        return len(self._available)

    def get(self, node_id: int) -> Optional[Node]:
        return self._nodes.get(node_id)

    def allocate_id(self) -> int:
        """Fresh node id -- also how whitewashing nodes get new identities."""
        node_id = self._next_id
        self._next_id += 1
        return node_id

    def join(self, node: Node) -> None:
        """Add a node to the pool (volunteering)."""
        if node.node_id in self._nodes:
            raise ValueError(f"node {node.node_id} already in pool")
        self._nodes[node.node_id] = node
        node.alive = True
        if node.available:
            self._mark_available(node.node_id)
        self.joins += 1

    def leave(self, node_id: int) -> Optional[Node]:
        """Remove a node (quitting).  A busy node's in-flight job is the
        task server's problem: its deadline will expire."""
        node = self._nodes.pop(node_id, None)
        if node is None:
            return None
        node.alive = False
        self._unmark_available(node_id)
        self.departures += 1
        return node

    def random_alive(self, rng: random.Random) -> Optional[Node]:
        """A uniformly random member (available or busy), for churn."""
        if not self._nodes:
            return None
        return self._nodes[rng.choice(list(self._nodes))]

    # ------------------------------------------------------------------
    # Assignment
    # ------------------------------------------------------------------

    def acquire_random(self, rng: random.Random) -> Optional[Node]:
        """Pick a uniformly random available node and mark it busy."""
        if not self._available:
            return None
        index = rng.randrange(len(self._available))
        node_id = self._available[index]
        self._remove_available_at(index)
        node = self._nodes[node_id]
        node.busy = True
        return node

    def release(self, node: Node) -> None:
        """Return a node to the available set after its job finishes."""
        node.busy = False
        if node.alive and node.node_id in self._nodes:
            self._mark_available(node.node_id)

    # ------------------------------------------------------------------
    # Internal available-set maintenance
    # ------------------------------------------------------------------

    def _mark_available(self, node_id: int) -> None:
        if node_id in self._available_index:
            return
        self._available_index[node_id] = len(self._available)
        self._available.append(node_id)

    def _unmark_available(self, node_id: int) -> None:
        index = self._available_index.get(node_id)
        if index is not None:
            self._remove_available_at(index)

    def _remove_available_at(self, index: int) -> None:
        node_id = self._available[index]
        last = self._available.pop()
        del self._available_index[node_id]
        if last != node_id:
            self._available[index] = last
            self._available_index[last] = index
