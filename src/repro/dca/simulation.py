"""Wiring and entry point for DCA simulation runs."""

from __future__ import annotations

from typing import Optional

from repro.dca.churn import ChurnProcess
from repro.dca.config import DcaConfig
from repro.dca.node import Node
from repro.dca.pool import NodePool
from repro.dca.report import DcaReport
from repro.dca.taskserver import TaskServer
from repro.dca.workload import Workload
from repro.obs.names import DCA_MAKESPAN
from repro.obs.recorder import Recorder
from repro.sim.engine import Simulator, StopSimulation


class DcaSimulation:
    """One configured simulation, ready to run.

    Separating construction from :meth:`run` lets tests inspect or
    perturb the wired components (pool, server, churn) before running.

    Args:
        config: The run configuration.
        recorder: Optional telemetry recorder; it is handed to the
            :class:`~repro.sim.engine.Simulator`, and the task server
            inherits it from there.  Telemetry observes without
            perturbing: same-seed runs are identical with it on or off.
    """

    def __init__(self, config: DcaConfig, recorder: Optional[Recorder] = None) -> None:
        self.config = config
        self.sim = Simulator(seed=config.seed, recorder=recorder, queue=config.queue)
        self.pool = NodePool()
        self.churn = ChurnProcess(
            self.sim,
            self.pool,
            config.reliability_distribution,
            arrival_rate=config.arrival_rate,
            departure_rate=config.departure_rate,
            speed_spread=config.speed_spread,
            unresponsive_prob=config.unresponsive_prob,
            on_join=self._on_join,
        )
        self.server = TaskServer(
            self.sim,
            self.pool,
            config.strategy,
            failure_model=config.failure_model,
            duration_low=config.duration_low,
            duration_high=config.duration_high,
            timeout=config.effective_timeout,
            spot_check_rate=config.spot_check_rate,
            on_all_done=self._on_all_done,
        )
        self._build_initial_pool()
        self._done = False

    def _build_initial_pool(self) -> None:
        for _ in range(self.config.nodes):
            self.pool.join(self.churn.make_node())
        # Initial membership is part of setup, not churn statistics.
        self.pool.joins = 0

    def _on_join(self, node: Node) -> None:
        self.server.pump()

    def _on_all_done(self) -> None:
        self._done = True
        self.churn.stop()
        raise StopSimulation

    def run(self) -> DcaReport:
        """Execute the computation and aggregate the report."""
        config = self.config
        for task in Workload(config.tasks).tasks():
            self.server.submit(task)
        self.churn.start()
        self.sim.run(until=config.max_time)
        if self.sim.recorder is not None:
            self.sim.recorder.gauge(DCA_MAKESPAN, self.sim.now)
        return DcaReport(
            strategy=config.strategy.describe(),
            tasks_submitted=config.tasks,
            records=self.server.records,
            makespan=self.sim.now,
            total_jobs_dispatched=self.server.total_jobs_dispatched,
            jobs_timed_out=self.server.jobs_timed_out,
            spot_checks=self.server.spot_checks_issued,
            nodes_joined=self.pool.joins,
            nodes_departed=self.pool.departures,
            seed=config.seed,
        )


def run_dca(config: DcaConfig, recorder: Optional[Recorder] = None) -> DcaReport:
    """Build and run one DCA simulation (the usual entry point)."""
    return DcaSimulation(config, recorder=recorder).run()
