"""The replicated state machine and replica behaviours.

Active replication's correctness story assumes deterministic state
machines: identical command sequences yield identical states, so honest
replicas always agree and any disagreement is a fault.  The
:class:`KeyValueStateMachine` here is exactly that; replicas wrap one and
may be honest or Byzantine (returning colluded wrong answers on reads).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Optional, Tuple

#: Commands are ("set", key, value) or ("get", key).
Command = Tuple


class KeyValueStateMachine:
    """A deterministic key-value store: the replicated state machine."""

    def __init__(self) -> None:
        self._data: Dict[Hashable, Any] = {}
        self.applied = 0

    def apply(self, command: Command) -> Any:
        """Apply a command and return its result.

        ``("set", key, value)`` stores and returns the value;
        ``("get", key)`` returns the stored value or ``None``.
        """
        if not command:
            raise ValueError("empty command")
        op = command[0]
        if op == "set":
            _, key, value = command
            self._data[key] = value
            self.applied += 1
            return value
        if op == "get":
            _, key = command
            self.applied += 1
            return self._data.get(key)
        raise ValueError(f"unknown command {op!r}")

    def snapshot(self) -> Dict[Hashable, Any]:
        """A copy of the current state (for backup initialisation)."""
        return dict(self._data)

    def restore(self, snapshot: Dict[Hashable, Any]) -> None:
        """Replace the state with a snapshot (failover recovery)."""
        self._data = dict(snapshot)


@dataclass
class Replica:
    """One honest replica: a state machine plus liveness."""

    replica_id: int
    machine: KeyValueStateMachine = field(default_factory=KeyValueStateMachine)
    alive: bool = True

    def execute(self, command: Command, rng: random.Random) -> Optional[Any]:
        """Execute a command; dead replicas return nothing."""
        if not self.alive:
            return None
        return self.machine.apply(command)

    @property
    def byzantine(self) -> bool:
        return False


@dataclass
class ByzantineReplica(Replica):
    """A replica that lies on reads with probability ``lie_prob``.

    Liars collude: all Byzantine replicas return the *same* wrong value
    for a given command (derived deterministically from the command), the
    worst case for voting, matching the paper's threat model.  Writes are
    applied faithfully so the replica stays plausibly in sync.
    """

    lie_prob: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.lie_prob <= 1.0:
            raise ValueError(f"lie probability must lie in [0, 1], got {self.lie_prob}")

    def execute(self, command: Command, rng: random.Random) -> Optional[Any]:
        if not self.alive:
            return None
        honest = self.machine.apply(command)
        if command[0] == "get" and rng.random() < self.lie_prob:
            return self.colluded_lie(command)
        return honest

    @staticmethod
    def colluded_lie(command: Command) -> Any:
        """The single wrong answer all liars agree on for this command."""
        return ("bogus", hash(command) & 0xFFFFFF)

    @property
    def byzantine(self) -> bool:
        return True
