"""Active replication with strategy-driven read quorums.

Classic active replication executes every request on *all* replicas and
takes a majority -- the traditional-redundancy cost profile.  The paper's
observation is that the replica count consulted per request can instead
be decided at runtime: sample a first wave of replicas, and only when
they disagree sample more, until the margin rule is satisfied.  Exactly
the iterative-redundancy loop, with replicas in place of volunteer nodes.

Writes are broadcast to every live replica (keeping state machines in
sync is orthogonal); the redundancy strategy governs the *read* path,
where Byzantine replicas can lie.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.core.strategy import RedundancyStrategy
from repro.core.types import JobOutcome, VoteState
from repro.replication.statemachine import Command, Replica


@dataclass
class ReadReport:
    """Aggregate statistics over a service's reads."""

    reads: int = 0
    correct: int = 0
    replicas_consulted: int = 0
    max_consulted: int = 0

    @property
    def reliability(self) -> float:
        return self.correct / self.reads if self.reads else float("nan")

    @property
    def mean_consulted(self) -> float:
        return self.replicas_consulted / self.reads if self.reads else float("nan")


class ActiveReplicationService:
    """A replica group whose reads are validated by a redundancy strategy.

    Args:
        replicas: The replica group (honest and/or Byzantine).
        strategy: Decides how many replica answers each read needs.
        rng: Randomness for replica sampling (and Byzantine behaviour).

    Reads sample *distinct* replicas per request, wave by wave, until the
    strategy accepts; if the group is smaller than the strategy wants,
    the read settles for the best vote the group can provide (counted in
    :attr:`exhausted_reads`).
    """

    def __init__(
        self,
        replicas: Sequence[Replica],
        strategy: RedundancyStrategy,
        rng: Optional[random.Random] = None,
    ) -> None:
        if not replicas:
            raise ValueError("need at least one replica")
        self.replicas = list(replicas)
        self.strategy = strategy
        self.rng = rng or random.Random(0)
        self.report = ReadReport()
        self.exhausted_reads = 0
        self._truth = {}  # ground truth for scoring, maintained on writes

    # ------------------------------------------------------------------
    # Writes: broadcast to all live replicas
    # ------------------------------------------------------------------

    def write(self, key, value) -> None:
        command: Command = ("set", key, value)
        for replica in self.replicas:
            if replica.alive:
                replica.execute(command, self.rng)
        self._truth[key] = value

    # ------------------------------------------------------------------
    # Reads: strategy-driven sampling
    # ------------------------------------------------------------------

    def read(self, key) -> Any:
        """Read ``key`` with as much replication as the vote demands."""
        command: Command = ("get", key)
        candidates = [replica for replica in self.replicas if replica.alive]
        self.rng.shuffle(candidates)
        vote = VoteState()
        consulted = 0
        pending = self.strategy.initial_jobs()
        accepted: Any = None
        decided = False
        while not decided:
            pending = min(pending, len(candidates) - consulted)
            if pending <= 0:
                # Group exhausted: settle for the current leader.
                self.exhausted_reads += 1
                accepted = vote.leader
                break
            vote.dispatched(pending)
            for _ in range(pending):
                replica = candidates[consulted]
                consulted += 1
                value = replica.execute(command, self.rng)
                vote.record(JobOutcome(value=value, node_id=replica.replica_id))
            decision = self.strategy.decide(vote)
            if decision.done:
                accepted = decision.accepted
                decided = True
            else:
                pending = decision.more_jobs
        truth = self._truth.get(key)
        self.report.reads += 1
        self.report.replicas_consulted += consulted
        self.report.max_consulted = max(self.report.max_consulted, consulted)
        if accepted == truth:
            self.report.correct += 1
        return accepted

    # ------------------------------------------------------------------
    # Group management
    # ------------------------------------------------------------------

    @property
    def live_count(self) -> int:
        return sum(1 for replica in self.replicas if replica.alive)

    def crash(self, replica_id: int) -> None:
        for replica in self.replicas:
            if replica.replica_id == replica_id:
                replica.alive = False
                return
        raise KeyError(replica_id)
