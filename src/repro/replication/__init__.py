"""Replicated services: primary backup and active replication (Section 6).

The paper positions iterative redundancy as *complementary* to the two
classic replication architectures:

* **primary backup** -- one primary serves requests and streams updates
  to ``n`` backups; a crash fails over to a backup.  "Iterative
  redundancy complements primary backup by specifying, at runtime, how
  many backups should exist to guarantee the maximum reliability for a
  given cost."
* **active replication** -- every replica executes every request and the
  client votes on the answers.  "Iterative redundancy complements active
  replication by specifying, at runtime, how many replicas should
  exist."

This package builds both on the discrete-event engine:

* :mod:`~repro.replication.statemachine` -- the replicated deterministic
  state machine (a small KV store) plus Byzantine replica behaviours;
* :mod:`~repro.replication.active` -- an active-replication service
  whose *read quorum* is driven by any
  :class:`~repro.core.strategy.RedundancyStrategy`: the margin rule
  samples exactly as many replicas as the observed disagreement demands;
* :mod:`~repro.replication.primary_backup` -- a crash-failover
  primary-backup group with update propagation, failover windows, and a
  backup-count sizing rule derived from the same confidence mathematics.
"""

from repro.replication.statemachine import (
    ByzantineReplica,
    KeyValueStateMachine,
    Replica,
)
from repro.replication.active import ActiveReplicationService, ReadReport
from repro.replication.primary_backup import (
    PrimaryBackupGroup,
    PrimaryBackupReport,
    backups_for_availability,
)

__all__ = [
    "ActiveReplicationService",
    "ByzantineReplica",
    "KeyValueStateMachine",
    "PrimaryBackupGroup",
    "PrimaryBackupReport",
    "ReadReport",
    "Replica",
    "backups_for_availability",
]
