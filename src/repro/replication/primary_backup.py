"""Primary backup with crash failover on the discrete-event engine.

One primary serves all requests and streams each update to ``n``
backups.  When the primary crashes, a detection timeout elapses, then the
freshest backup is promoted; updates acknowledged only by the crashed
primary within the propagation window are lost.  The group replaces
crashed members after a repair delay, keeping the target backup count.

The sizing question the paper assigns to smart redundancy -- *how many
backups for a target availability at minimum cost* -- is answered by
:func:`backups_for_availability`: with per-member availability ``a``
(derived from crash rate and repair time), the group is up while at least
one member is up, so ``n`` backups give availability ``1 - (1-a)^(n+1)``;
pick the smallest ``n`` meeting the target.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.replication.statemachine import Command, KeyValueStateMachine
from repro.sim.engine import Simulator


def backups_for_availability(
    member_availability: float, target: float
) -> int:
    """Minimum backups so the group's availability reaches ``target``.

    Group availability with ``n`` backups = ``1 - (1 - a)^(n + 1)``
    (the group is down only when every member is down, taking member
    downtimes as independent).
    """
    if not 0.0 < member_availability < 1.0:
        raise ValueError(
            f"member availability must lie strictly in (0, 1), got {member_availability}"
        )
    if not 0.0 < target < 1.0:
        raise ValueError(f"target must lie strictly in (0, 1), got {target}")
    down = 1.0 - member_availability
    needed_members = math.log(1.0 - target) / math.log(down)
    return max(0, math.ceil(needed_members - 1.0 - 1e-12))


@dataclass
class PrimaryBackupReport:
    """What one primary-backup run experienced."""

    requests: int = 0
    served: int = 0
    rejected_during_failover: int = 0
    failovers: int = 0
    updates_lost: int = 0
    downtime: float = 0.0
    horizon: float = 0.0

    @property
    def availability(self) -> float:
        if self.horizon <= 0:
            return float("nan")
        return 1.0 - self.downtime / self.horizon

    @property
    def served_fraction(self) -> float:
        return self.served / self.requests if self.requests else float("nan")


class PrimaryBackupGroup:
    """A crash-failover primary-backup service driven by the DES.

    Args:
        sim: The simulator.
        backups: Number of standby replicas to maintain.
        crash_rate: Poisson crash rate per member.
        repair_time: Time to bring a replacement member online.
        failover_time: Detection + promotion delay after a primary crash.
        propagation_delay: Update-stream lag; updates newer than this at
            crash time exist only on the primary and are lost.
    """

    def __init__(
        self,
        sim: Simulator,
        *,
        backups: int = 2,
        crash_rate: float = 0.01,
        repair_time: float = 5.0,
        failover_time: float = 1.0,
        propagation_delay: float = 0.1,
    ) -> None:
        if backups < 0:
            raise ValueError(f"backup count must be non-negative, got {backups}")
        if crash_rate < 0:
            raise ValueError(f"crash rate must be non-negative, got {crash_rate}")
        if min(repair_time, failover_time, propagation_delay) < 0:
            raise ValueError("times must be non-negative")
        self.sim = sim
        self.backups_target = backups
        self.crash_rate = crash_rate
        self.repair_time = repair_time
        self.failover_time = failover_time
        self.propagation_delay = propagation_delay
        self._rng = sim.rng.stream("primary-backup")

        self.primary: Optional[KeyValueStateMachine] = KeyValueStateMachine()
        self.standbys: List[KeyValueStateMachine] = [
            KeyValueStateMachine() for _ in range(backups)
        ]
        self._unreplicated: List[Command] = []  # acked, not yet propagated
        self._down_until: float = 0.0
        self.report = PrimaryBackupReport()
        self._schedule_primary_crash()

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------

    @property
    def available(self) -> bool:
        return self.primary is not None and self.sim.now >= self._down_until

    def request(self, command: Command) -> Optional[Any]:
        """Serve a client command, or ``None`` while failing over."""
        self.report.requests += 1
        if not self.available:
            self.report.rejected_during_failover += 1
            return None
        result = self.primary.apply(command)
        self.report.served += 1
        if command[0] == "set":
            self._unreplicated.append(command)
            self.sim.schedule_after(
                self.propagation_delay,
                lambda ev, c=command: self._propagate(c),
            )
        return result

    # ------------------------------------------------------------------
    # Replication machinery
    # ------------------------------------------------------------------

    def _propagate(self, command: Command) -> None:
        if command in self._unreplicated:
            self._unreplicated.remove(command)
            for standby in self.standbys:
                standby.apply(command)

    def _schedule_primary_crash(self) -> None:
        if self.crash_rate <= 0:
            return
        delay = self._rng.expovariate(self.crash_rate)
        self.sim.schedule_after(delay, self._on_primary_crash)

    def _on_primary_crash(self, event) -> None:
        if self.primary is None:
            return
        self.report.failovers += 1
        self.report.updates_lost += len(self._unreplicated)
        self._unreplicated.clear()
        if self.standbys:
            # Promote the first standby after the failover window.
            promoted = self.standbys.pop(0)
            self.primary = promoted
            start = max(self.sim.now, self._down_until)
            self._down_until = start + self.failover_time
            self.report.downtime += self.failover_time
            # Start repairing a replacement member.
            self.sim.schedule_after(self.repair_time, self._on_repair)
            self._schedule_primary_crash()
        else:
            # Total loss: service is down until a repair completes.
            self.primary = None
            self._repair_started_at = self.sim.now
            self.sim.schedule_after(self.repair_time, self._on_total_repair)

    def _on_repair(self, event) -> None:
        if len(self.standbys) < self.backups_target:
            replacement = KeyValueStateMachine()
            if self.primary is not None:
                replacement.restore(self.primary.snapshot())
            self.standbys.append(replacement)

    def _on_total_repair(self, event) -> None:
        if self.primary is None:
            self.primary = KeyValueStateMachine()
            self.report.downtime += self.sim.now - self._repair_started_at
            self._down_until = self.sim.now
            self._schedule_primary_crash()
            for _ in range(self.backups_target):
                self.sim.schedule_after(self.repair_time, self._on_repair)

    def finish(self) -> PrimaryBackupReport:
        """Close the books at the current simulated time."""
        self.report.horizon = self.sim.now
        return self.report
