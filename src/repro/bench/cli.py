"""Command-line entry point for the benchmark harness.

Usage::

    python -m repro.bench --quick
    python -m repro.bench decide_loops figure_sweep --jobs 4 --output-dir bench-out

Writes one ``BENCH_<suite>.json`` per suite and prints a one-line summary
each.  Exits non-zero if the figure sweep's parallel checksum diverges
from the serial one -- CI treats that as a broken determinism contract.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bench.report import write_report
from repro.bench.suites import SUITES, run_suite


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Benchmark the voting hot paths and the replication engine.",
    )
    parser.add_argument(
        "suites",
        nargs="*",
        metavar="suite",
        help=f"suites to run (default: all of {sorted(SUITES)})",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced problem sizes and repeats (CI smoke mode)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for the parallel sweep (default: all CPUs)",
    )
    parser.add_argument("--seed", type=int, default=0, help="base seed (default 0)")
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="timed repeats per case (default: per-suite)",
    )
    parser.add_argument(
        "--output-dir",
        default=".",
        help="directory for BENCH_<suite>.json reports (default: cwd)",
    )
    parser.add_argument("--list", action="store_true", help="list suites and exit")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        for name in sorted(SUITES):
            summary = (SUITES[name].__doc__ or "").strip().splitlines()[0]
            print(f"  {name:15s} {summary}")
        return 0
    names = args.suites or sorted(SUITES)
    unknown = [name for name in names if name not in SUITES]
    if unknown:
        print(
            f"unknown suite(s) {unknown}; choose from {sorted(SUITES)}",
            file=sys.stderr,
        )
        return 2
    repeats = args.repeats
    if repeats is None and args.quick:
        repeats = 1
    diverged = False
    for name in names:
        payload = run_suite(
            name,
            seed=args.seed,
            jobs=args.jobs,
            quick=args.quick,
            repeats=repeats,
        )
        path = write_report(name, payload, output_dir=args.output_dir)
        line = f"{name}: {payload['wall_clock_seconds']:.2f}s -> {path}"
        if "speedup" in payload.get("results", {}):
            line += f" (speedup x{payload['results']['speedup']:.2f})"
        print(line)
        if payload.get("diverged"):
            diverged = True
            print(
                f"ERROR: {name}: parallel checksum "
                f"{payload['parallel_checksum'][:16]}... diverged from serial "
                f"{payload['serial_checksum'][:16]}...",
                file=sys.stderr,
            )
    if diverged:
        print(
            "benchmark FAILED: parallel results diverged from serial baseline",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
