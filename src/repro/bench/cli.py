"""Command-line entry point for the benchmark harness.

Usage::

    python -m repro.bench --quick
    python -m repro.bench decide_loops figure_sweep --jobs 4 --output-dir bench-out
    python -m repro.bench decide_loops --compare benchmarks/baselines
    python -m repro.bench dca_run --profile 25

Writes one ``BENCH_<suite>.json`` per suite and prints a one-line summary
each.  Exits non-zero if the figure sweep's parallel checksum diverges
from the serial one -- CI treats that as a broken determinism contract.

With ``--compare DIR`` each fresh report is additionally judged against
the committed baseline in ``DIR`` (see :mod:`repro.bench.compare`):
checksums must match exactly and no timing may regress beyond
``--tolerance``; any violation exits non-zero and the full comparison is
written to ``BENCH_comparison.json`` in the output directory for CI to
upload.

With ``--profile N`` each suite runs once under :mod:`cProfile` (after
the timed runs, so profiling overhead never pollutes the numbers) and the
top ``N`` functions by cumulative time are printed -- the entry point of
the optimization workflow documented in ``docs/performance.md``.

With ``--history PATH`` each suite additionally appends one JSONL row
(suite, gated best-seconds, checksum, git sha, timestamp) to PATH --
the committed trajectory lives at ``benchmarks/history.jsonl``; see
:mod:`repro.bench.history`.

The ``scale_*`` regime suites also carry a throughput-floor gate: at
full size the sharded columnar engine must beat the object DES by
``DES_SPEEDUP_FLOOR``; a report with ``below_des_floor`` set exits
non-zero like a checksum divergence.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bench.compare import (
    DEFAULT_TOLERANCE,
    compare_to_baseline,
    format_comparison,
)
from repro.bench.history import append_history
from repro.bench.report import write_report
from repro.bench.suites import SUITES, run_suite


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Benchmark the voting hot paths and the replication engine.",
    )
    parser.add_argument(
        "suites",
        nargs="*",
        metavar="suite",
        help=f"suites to run (default: all of {sorted(SUITES)})",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced problem sizes and repeats (CI smoke mode)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for the parallel sweep (default: all CPUs)",
    )
    parser.add_argument("--seed", type=int, default=0, help="base seed (default 0)")
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="timed repeats per case (default: per-suite)",
    )
    parser.add_argument(
        "--output-dir",
        default=".",
        help="directory for BENCH_<suite>.json reports (default: cwd)",
    )
    parser.add_argument("--list", action="store_true", help="list suites and exit")
    parser.add_argument(
        "--compare",
        metavar="DIR",
        default=None,
        help="judge fresh reports against baseline BENCH_<suite>.json files "
        "in DIR; exits non-zero on checksum mismatch or timing regression",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed relative slowdown per timing before --compare fails "
        f"(default {DEFAULT_TOLERANCE})",
    )
    parser.add_argument(
        "--history",
        metavar="PATH",
        default=None,
        help="append one schema-versioned JSONL row per suite (suite, gated "
        "best-seconds, checksum, git sha, timestamp) to PATH "
        "(e.g. benchmarks/history.jsonl)",
    )
    parser.add_argument(
        "--profile",
        type=int,
        metavar="N",
        default=None,
        help="after timing, rerun each suite once under cProfile and print "
        "the top N functions by cumulative time",
    )
    parser.add_argument(
        "--telemetry",
        metavar="PATH",
        default=None,
        help="after timing, run one instrumented DCA simulation and write "
        "its telemetry capture to PATH (inspect with 'repro-obs summary')",
    )
    return parser


def _profile_suite(name: str, args: argparse.Namespace, top: int) -> None:
    """One extra run of ``name`` under cProfile; prints the top functions."""
    import cProfile
    import io
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    run_suite(
        name,
        seed=args.seed,
        jobs=args.jobs,
        quick=args.quick,
        repeats=1,
    )
    profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(top)
    print(f"--- profile: {name} (top {top} by cumulative time) ---")
    print(buffer.getvalue())


def _telemetry_capture(args: argparse.Namespace) -> None:
    """One instrumented DCA run, saved as a capture.

    Runs *after* the timed suites (like ``--profile``) so recording
    never pollutes the benchmark numbers.
    """
    from repro.core import IterativeRedundancy
    from repro.dca import DcaConfig, run_dca
    from repro.obs import Capture, TelemetryRecorder
    from repro.obs.host import capture_meta

    tasks = 300 if args.quick else 1_500
    nodes = 100 if args.quick else 300
    recorder = TelemetryRecorder(max_spans=20_000, max_events=20_000)
    run_dca(
        DcaConfig(
            strategy=IterativeRedundancy(3),
            tasks=tasks,
            nodes=nodes,
            reliability=0.7,
            seed=args.seed,
        ),
        recorder=recorder,
    )
    meta = capture_meta("bench:dca_run", quick=args.quick, seed=args.seed)
    path = Capture.from_recorder(
        recorder, meta=meta, label="iterative(d=3) x1"
    ).save(args.telemetry)
    print(f"telemetry capture -> {path}")


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        for name in sorted(SUITES):
            summary = (SUITES[name].__doc__ or "").strip().splitlines()[0]
            print(f"  {name:15s} {summary}")
        return 0
    names = args.suites or sorted(SUITES)
    unknown = [name for name in names if name not in SUITES]
    if unknown:
        print(
            f"unknown suite(s) {unknown}; choose from {sorted(SUITES)}",
            file=sys.stderr,
        )
        return 2
    repeats = args.repeats
    if repeats is None and args.quick:
        repeats = 1
    diverged = False
    below_floor = False
    comparisons = []
    for name in names:
        payload = run_suite(
            name,
            seed=args.seed,
            jobs=args.jobs,
            quick=args.quick,
            repeats=repeats,
        )
        path = write_report(name, payload, output_dir=args.output_dir)
        line = f"{name}: {payload['wall_clock_seconds']:.2f}s -> {path}"
        if "speedup" in payload.get("results", {}):
            line += f" (speedup x{payload['results']['speedup']:.2f})"
        print(line)
        if payload.get("diverged"):
            diverged = True
            print(
                f"ERROR: {name}: parallel checksum "
                f"{payload['parallel_checksum'][:16]}... diverged from serial "
                f"{payload['serial_checksum'][:16]}...",
                file=sys.stderr,
            )
        if payload.get("below_des_floor"):
            below_floor = True
            print(
                f"ERROR: {name}: columnar speedup over the DES fell to "
                f"x{payload['results']['speedup_vs_des']:.1f}, below the "
                "committed floor",
                file=sys.stderr,
            )
        if args.history is not None:
            append_history(args.history, name, payload)
        if args.compare is not None:
            comparison = compare_to_baseline(
                name, payload, args.compare, tolerance=args.tolerance
            )
            if comparison is None:
                print(f"{name}: no baseline in {args.compare}; skipping compare")
            else:
                comparisons.append(comparison)
                print(format_comparison(comparison))
        if args.profile is not None:
            _profile_suite(name, args, args.profile)
    if args.telemetry is not None:
        _telemetry_capture(args)
    failed = diverged or below_floor
    if comparisons:
        import json
        from pathlib import Path

        artifact = Path(args.output_dir) / "BENCH_comparison.json"
        artifact.parent.mkdir(parents=True, exist_ok=True)
        artifact.write_text(
            json.dumps({"comparisons": comparisons}, indent=2, sort_keys=True) + "\n"
        )
        print(f"comparison artifact -> {artifact}")
        bad = [c for c in comparisons if c["verdict"] != "ok"]
        if bad:
            failed = True
            for comparison in bad:
                print(
                    f"benchmark FAILED: {comparison['suite']} "
                    f"verdict={comparison['verdict']}",
                    file=sys.stderr,
                )
    if diverged:
        print(
            "benchmark FAILED: parallel results diverged from serial baseline",
            file=sys.stderr,
        )
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
