"""Wall-clock timing primitives for the benchmark suites."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Tuple


@dataclass(frozen=True)
class TimingStats:
    """Wall-clock statistics over repeated calls of one benchmark body."""

    repeats: int
    best: float
    mean: float
    total: float

    def as_dict(self) -> dict:
        return {
            "repeats": self.repeats,
            "best_seconds": self.best,
            "mean_seconds": self.mean,
            "total_seconds": self.total,
        }


def time_callable(
    fn: Callable[[], Any],
    *,
    repeats: int = 3,
    warmup: int = 1,
) -> Tuple[TimingStats, Any]:
    """Call ``fn`` ``warmup + repeats`` times; time the last ``repeats``.

    Returns the timing statistics and the value from the final call (every
    call is deterministic given its seed, so any call's value would do).
    """
    if repeats < 1:
        raise ValueError(f"need at least one timed repeat, got {repeats}")
    if warmup < 0:
        raise ValueError(f"warmup must be non-negative, got {warmup}")
    value: Any = None
    for _ in range(warmup):
        value = fn()
    durations = []
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        durations.append(time.perf_counter() - start)
    return (
        TimingStats(
            repeats=repeats,
            best=min(durations),
            mean=sum(durations) / len(durations),
            total=sum(durations),
        ),
        value,
    )
