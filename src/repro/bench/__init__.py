"""Benchmark harness for the replication engine and voting hot paths.

Each suite times a core code path with :func:`time.perf_counter` and
emits a schema-versioned ``BENCH_<name>.json`` report (machine, python,
seed, wall-clock stats, and a checksum of the computed results so CI can
detect serial/parallel divergence alongside perf drift).

Run it with::

    python -m repro.bench --quick
    python -m repro.bench decide_loops figure_sweep --jobs 4

Benchmarks measure wall-clock time by design; the simulation packages
themselves stay wall-clock-free (reprolint RL002).
"""

from repro.bench.report import (
    SCHEMA_VERSION,
    machine_info,
    report_path,
    write_report,
)
from repro.bench.suites import SUITES, run_suite, run_suites
from repro.bench.timing import TimingStats, time_callable

__all__ = [
    "SCHEMA_VERSION",
    "SUITES",
    "TimingStats",
    "machine_info",
    "report_path",
    "run_suite",
    "run_suites",
    "time_callable",
    "write_report",
]
