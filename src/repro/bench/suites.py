"""The benchmark suites: voting hot paths, the DES engine, the DCA
model, the serial-vs-parallel figure sweep, and the million-task
sharded ``scale`` tier.

Every suite is deterministic given its seed: reports carry a checksum
(:func:`repro.parallel.fingerprint_of` over the computed results) so CI
can flag *correctness* drift, not just perf drift.  The ``figure_sweep``
suite computes the same figure serially and in parallel and compares the
two checksums -- a standing regression test for the replication engine's
jobs-invariance guarantee; the ``scale`` suite does the same for the
sharded columnar task server at 10^6 tasks / 10^5 nodes.
"""

from __future__ import annotations

import gc
import math
import statistics
import time
from typing import Callable, Dict, Optional

from repro.bench.timing import TimingStats, time_callable
from repro.core import (
    IterativeRedundancy,
    ProgressiveRedundancy,
    TraditionalRedundancy,
)
from repro.core.runner import monte_carlo
from repro.dca import DcaConfig, run_dca
from repro.dca import columnar
from repro.obs import NullRecorder, TelemetryRecorder
from repro.parallel import (
    fingerprint_of,
    merge_shard_reports,
    resolve_jobs,
    run_dca_shards,
    shard_specs,
    shm_available,
)
from repro.sim.engine import Simulator

#: suite name -> callable(seed=, jobs=, quick=, repeats=) -> payload dict
SUITES: Dict[str, Callable[..., dict]] = {}


def _suite(fn: Callable[..., dict]) -> Callable[..., dict]:
    SUITES[fn.__name__.replace("bench_", "")] = fn
    return fn


@_suite
def bench_decide_loops(
    *, seed: int = 0, jobs: Optional[int] = None, quick: bool = False, repeats: int = 3
) -> dict:
    """Time the three decide loops via the substrate-free Monte-Carlo runner."""
    del jobs
    tasks = 400 if quick else 4_000
    r = 0.7
    cases = {
        "iterative_d3": lambda: monte_carlo(
            lambda: IterativeRedundancy(3), r, tasks, seed=seed
        ),
        "progressive_k7": lambda: monte_carlo(
            lambda: ProgressiveRedundancy(7), r, tasks, seed=seed
        ),
        "traditional_k7": lambda: monte_carlo(
            lambda: TraditionalRedundancy(7), r, tasks, seed=seed
        ),
    }
    timings = {}
    results = {}
    for name, body in cases.items():
        stats, estimate = time_callable(body, repeats=repeats)
        timings[name] = stats.as_dict()
        results[name] = {
            "reliability": estimate.reliability,
            "cost_factor": estimate.cost_factor,
            "mean_waves": estimate.mean_waves,
            "tasks_per_second": tasks / stats.best,
        }
    checksum_input = {
        name: {k: v for k, v in metrics.items() if k != "tasks_per_second"}
        for name, metrics in results.items()
    }
    return {
        "seed": seed,
        "quick": quick,
        "params": {"tasks": tasks, "r": r},
        "timings": timings,
        "results": results,
        "checksum": fingerprint_of(checksum_input),
    }


@_suite
def bench_sim_engine(
    *, seed: int = 0, jobs: Optional[int] = None, quick: bool = False, repeats: int = 3
) -> dict:
    """Raw DES event throughput: a self-rescheduling event chain."""
    del jobs
    events = 20_000 if quick else 200_000

    def body() -> int:
        sim = Simulator(seed=seed)
        delays = sim.rng.stream("bench-delays")

        def tick(event) -> None:
            if sim.events_processed < events:
                sim.schedule_after(delays.expovariate(1.0), tick)

        sim.schedule(0.0, tick)
        sim.run()
        return sim.events_processed

    stats, processed = time_callable(body, repeats=repeats)
    results = {
        "events_processed": processed,
        "events_per_second": processed / stats.best,
    }
    return {
        "seed": seed,
        "quick": quick,
        "params": {"events": events},
        "timings": {"event_chain": stats.as_dict()},
        "results": results,
        "checksum": fingerprint_of({"events_processed": processed}),
    }


@_suite
def bench_dca_run(
    *, seed: int = 0, jobs: Optional[int] = None, quick: bool = False, repeats: int = 3
) -> dict:
    """End-to-end DCA simulation throughput (the per-replicate unit of work)."""
    del jobs
    tasks = 300 if quick else 2_000
    nodes = 100 if quick else 400
    config = dict(tasks=tasks, nodes=nodes, reliability=0.7, seed=seed)

    def body() -> dict:
        report = run_dca(DcaConfig(strategy=IterativeRedundancy(3), **config))
        return report.as_dict()

    stats, metrics = time_callable(body, repeats=repeats)
    return {
        "seed": seed,
        "quick": quick,
        "params": config,
        "timings": {"iterative_d3": stats.as_dict()},
        "results": {
            "metrics": metrics,
            "tasks_per_second": tasks / stats.best,
        },
        "checksum": fingerprint_of(metrics),
    }


@_suite
def bench_obs_overhead(
    *, seed: int = 0, jobs: Optional[int] = None, quick: bool = False, repeats: int = 15
) -> dict:
    """Telemetry overhead on the per-replicate unit of work.

    Times the same DCA run three ways: uninstrumented, with a
    :class:`~repro.obs.NullRecorder` (what every telemetry-off run pays
    for the instrumentation hooks), and with a full buffering
    :class:`~repro.obs.TelemetryRecorder`.

    The *gated* quantity is ``null_recorder_ratio`` -- the median, over
    rounds, of the paired NullRecorder/bare time ratio -- stored as a
    pseudo-timing (clamped below at the true floor of 1.0) so the
    standard ``--compare`` machinery can hold it to a tolerance.  Being
    dimensionless, the committed baseline (1.0 on any healthy machine)
    transfers across machines; absolute seconds land in ``results``
    ungated.

    The variants are timed *interleaved* (bare, null, telemetry per
    round) rather than in consecutive blocks, and the ratio is paired
    within each round, so slow drift in machine load hits all variants
    alike and cancels; the median shrugs off bursty rounds that a
    best-of or a mean would absorb.
    """
    del jobs
    tasks = 300 if quick else 1_500
    nodes = 100 if quick else 300
    config = dict(tasks=tasks, nodes=nodes, reliability=0.7, seed=seed)

    def run(recorder):
        report = run_dca(
            DcaConfig(strategy=IterativeRedundancy(3), **config), recorder=recorder
        )
        return report.as_dict()

    variants = [
        ("bare", lambda: run(None)),
        ("null_recorder", lambda: run(NullRecorder())),
        ("telemetry_recorder", lambda: run(TelemetryRecorder())),
    ]
    metrics = {}
    durations: dict = {name: [] for name, _ in variants}
    for name, body in variants:  # warmup round
        metrics[name] = body()
    for round_index in range(repeats):
        # Rotate the order each round and collect garbage before each
        # timed run, so neither position in the round nor the previous
        # variant's garbage biases any one variant.
        offset = round_index % len(variants)
        for name, body in variants[offset:] + variants[:offset]:
            gc.collect()
            start = time.perf_counter()
            body()
            durations[name].append(time.perf_counter() - start)
    stats = {
        name: TimingStats(
            repeats=repeats,
            best=min(times),
            mean=sum(times) / len(times),
            total=sum(times),
        )
        for name, times in durations.items()
    }
    bare_stats = stats["bare"]
    null_stats = stats["null_recorder"]
    telemetry_stats = stats["telemetry_recorder"]
    bare_metrics = metrics["bare"]
    if not (bare_metrics == metrics["null_recorder"] == metrics["telemetry_recorder"]):
        raise AssertionError("telemetry perturbed simulation metrics")
    null_ratio = statistics.median(
        null / bare
        for null, bare in zip(durations["null_recorder"], durations["bare"])
    )
    telemetry_ratio = statistics.median(
        tele / bare
        for tele, bare in zip(durations["telemetry_recorder"], durations["bare"])
    )
    return {
        "seed": seed,
        "quick": quick,
        "params": config,
        "timings": {
            # Dimensionless ratio as the gated "timing": machine-portable.
            # Clamped below at 1.0 -- a NullRecorder run cannot truly beat
            # the bare run, so anything under 1.0 is measurement noise and
            # would only make a regenerated baseline unfairly strict.
            "null_recorder_ratio": {
                "repeats": repeats,
                "best_seconds": max(1.0, null_ratio),
                "mean_seconds": max(1.0, null_ratio),
                "total_seconds": max(1.0, null_ratio),
            },
        },
        "results": {
            "bare": bare_stats.as_dict(),
            "null_recorder": null_stats.as_dict(),
            "telemetry_recorder": telemetry_stats.as_dict(),
            "null_recorder_overhead": null_ratio - 1.0,
            "telemetry_recorder_overhead": telemetry_ratio - 1.0,
        },
        "checksum": fingerprint_of(bare_metrics),
    }


@_suite
def bench_figure_sweep(
    *, seed: int = 0, jobs: Optional[int] = None, quick: bool = False, repeats: int = 1
) -> dict:
    """Figure 5(a) at reduced scale, serial vs parallel.

    The serial and parallel checksums must be identical -- any divergence
    means the replication engine broke its determinism contract, and the
    CLI turns it into a non-zero exit for CI.
    """
    from repro.experiments import figure5a

    effective_jobs = resolve_jobs(jobs)
    params = dict(
        ks=(3, 7),
        ds=(2, 3),
        tasks=300 if quick else 1_500,
        nodes=100 if quick else 300,
        replications=2,
        seed=seed,
    )

    def run(n_jobs: int) -> dict:
        return figure5a.compute(jobs=n_jobs, **params).as_dict()

    serial_stats, serial_result = time_callable(
        lambda: run(1), repeats=repeats, warmup=0
    )
    parallel_stats, parallel_result = time_callable(
        lambda: run(effective_jobs), repeats=repeats, warmup=0
    )
    serial_checksum = fingerprint_of(serial_result)
    parallel_checksum = fingerprint_of(parallel_result)
    return {
        "seed": seed,
        "quick": quick,
        "jobs": effective_jobs,
        "params": params,
        "timings": {
            "serial": serial_stats.as_dict(),
            "parallel": parallel_stats.as_dict(),
        },
        "results": {
            "speedup": serial_stats.best / parallel_stats.best,
        },
        "serial_checksum": serial_checksum,
        "parallel_checksum": parallel_checksum,
        "checksum": serial_checksum,
        "diverged": serial_checksum != parallel_checksum,
    }


@_suite
def bench_scale(
    *, seed: int = 0, jobs: Optional[int] = None, quick: bool = False, repeats: int = 3
) -> dict:
    """Million-task tier: the sharded columnar engine, serial vs parallel.

    Splits one computation into task-server shards
    (:func:`repro.parallel.shard_specs`), runs them at ``jobs=1`` and
    ``jobs=N``, and merges each side with
    :func:`repro.parallel.merge_shard_reports`.  The two merged reports
    -- including their :func:`~repro.parallel.combined_fingerprint`
    checksums -- must be byte-identical; any divergence sets
    ``diverged`` and the CLI turns it into a non-zero exit for CI.

    Full size is 10^6 tasks over 10^5 nodes (the scaling target from
    ``docs/scaling.md``); quick size is the CI smoke gate.  Quick runs
    finish in tens of milliseconds, where wall-clock noise dwarfs any
    real signal, so -- like ``obs_overhead``'s ratio trick -- the quick
    payload gates *checksum identity only* and reports its raw timings
    ungated under ``results``; perf regressions are gated at full size,
    where best-of-``repeats`` seconds are stable.  Without numpy the
    suite degrades to a small object-DES run -- the ``engine`` param
    then differs from any committed columnar baseline, so ``--compare``
    reports *incomparable* instead of a vacuous pass.
    """
    engine = "des" if columnar.np is None else "columnar"
    if engine == "columnar":
        tasks = 20_000 if quick else 1_000_000
        nodes = 2_000 if quick else 100_000
    else:
        tasks = 2_000 if quick else 10_000
        nodes = 200 if quick else 1_000
    shards = 4 if quick else 8
    # The identity under test is cross-process determinism, so the
    # parallel leg gets at least two workers even on a one-CPU host.
    parallel_jobs = max(2, resolve_jobs(jobs))
    params = dict(
        tasks=tasks, nodes=nodes, shards=shards, reliability=0.7, engine=engine
    )

    def run(n_jobs: int) -> dict:
        specs = shard_specs(
            lambda: IterativeRedundancy(3),
            tasks=tasks,
            nodes=nodes,
            reliability=0.7,
            shards=shards,
            seed=seed,
            engine=engine,
        )
        return merge_shard_reports(run_dca_shards(specs, jobs=n_jobs))

    serial_stats, serial_merged = time_callable(
        lambda: run(1), repeats=repeats, warmup=0
    )
    parallel_stats, parallel_merged = time_callable(
        lambda: run(parallel_jobs), repeats=repeats, warmup=0
    )
    serial_checksum = serial_merged["checksum"]
    parallel_checksum = parallel_merged["checksum"]
    timings = {
        "serial": serial_stats.as_dict(),
        "parallel": parallel_stats.as_dict(),
    }
    results = {
        "merged": serial_merged,
        "tasks_per_second": tasks / serial_stats.best,
        "speedup": serial_stats.best / parallel_stats.best,
    }
    if quick:
        results["timings_ungated"] = timings
    return {
        "seed": seed,
        "quick": quick,
        "jobs": parallel_jobs,
        "params": params,
        "timings": {} if quick else timings,
        "results": results,
        "serial_checksum": serial_checksum,
        "parallel_checksum": parallel_checksum,
        "checksum": serial_checksum,
        # Whole-report equality, strictly stronger than checksum equality.
        "diverged": serial_merged != parallel_merged,
    }


#: regime name -> config overrides as a function of the pool size.
#: Churn rates scale with the pool (a bigger pool churns more per unit
#: time at the same per-node hazard); the spot-check gate and the
#: deadline are per-assignment / per-run quantities and stay fixed.
_SCALE_REGIMES: Dict[str, Callable[[int], dict]] = {
    "churn": lambda nodes: {
        "arrival_rate": nodes * 0.01,
        "departure_rate": nodes * 0.01,
    },
    "spot": lambda nodes: {"spot_check_rate": 0.05},
    "deadline": lambda nodes: {"max_time": 6.0},
}

#: Minimum full-size columnar-vs-DES throughput ratio per regime (the
#: ``below_des_floor`` gate; see ``docs/performance.md``).
DES_SPEEDUP_FLOOR = 50.0


def _bench_scale_regime(
    regime: str,
    *,
    seed: int,
    jobs: Optional[int],
    quick: bool,
    repeats: int,
) -> dict:
    """Shared body of the per-regime ``scale_*`` suites.

    Same shape as :func:`bench_scale` -- sharded columnar serial vs
    parallel, whole-merged-report identity gated via ``diverged`` -- plus
    two regime-specific teeth: shard columns travel over the
    shared-memory transport (so the bench exercises the shm path end to
    end), and a small object-DES leg of the *same* regime yields
    ``speedup_vs_des``, gated at full size against
    :data:`DES_SPEEDUP_FLOOR` via ``below_des_floor``.
    """
    engine = "des" if columnar.np is None else "columnar"
    if engine == "columnar":
        tasks = 20_000 if quick else 1_000_000
        nodes = 2_000 if quick else 100_000
    else:
        tasks = 2_000 if quick else 10_000
        nodes = 200 if quick else 1_000
    shards = 4 if quick else 8
    transport = "shm" if engine == "columnar" and shm_available() else "pickle"
    parallel_jobs = max(2, resolve_jobs(jobs))
    overrides = _SCALE_REGIMES[regime](nodes)
    params = dict(
        tasks=tasks,
        nodes=nodes,
        shards=shards,
        reliability=0.7,
        engine=engine,
        transport=transport,
        **overrides,
    )

    def run(n_jobs: int) -> dict:
        specs = shard_specs(
            lambda: IterativeRedundancy(3),
            tasks=tasks,
            nodes=nodes,
            reliability=0.7,
            shards=shards,
            seed=seed,
            engine=engine,
            **overrides,
        )
        return merge_shard_reports(
            run_dca_shards(specs, jobs=n_jobs, transport=transport)
        )

    serial_stats, serial_merged = time_callable(
        lambda: run(1), repeats=repeats, warmup=0
    )
    parallel_stats, parallel_merged = time_callable(
        lambda: run(parallel_jobs), repeats=repeats, warmup=0
    )

    # The DES reference leg: the same regime at a size the object DES
    # can stomach, timed once -- throughputs divide, so the legs need
    # not be the same size.
    des_tasks = 500 if quick else 2_000
    des_nodes = max(1, nodes * des_tasks // tasks)
    des_overrides = _SCALE_REGIMES[regime](des_nodes)
    des_stats, des_metrics = time_callable(
        lambda: run_dca(
            DcaConfig(
                strategy=IterativeRedundancy(3),
                tasks=des_tasks,
                nodes=des_nodes,
                reliability=0.7,
                seed=seed,
                **des_overrides,
            )
        ).as_dict(),
        repeats=1,
        warmup=0,
    )
    # Throughput counts *completed* tasks: under a deadline both engines
    # stop at the horizon with work undone, and crediting submitted
    # tasks would reward the engine that finished the smaller fraction.
    tasks_per_second = serial_merged["tasks"] / serial_stats.best
    des_tasks_per_second = des_metrics["tasks"] / des_stats.best
    speedup_vs_des = (
        tasks_per_second / des_tasks_per_second
        if des_tasks_per_second
        else math.inf
    )

    serial_checksum = serial_merged["checksum"]
    parallel_checksum = parallel_merged["checksum"]
    timings = {
        "serial": serial_stats.as_dict(),
        "parallel": parallel_stats.as_dict(),
    }
    results = {
        "merged": serial_merged,
        "tasks_per_second": tasks_per_second,
        "speedup": serial_stats.best / parallel_stats.best,
        "des_tasks_per_second": des_tasks_per_second,
        "des_reference": {"tasks": des_tasks, "nodes": des_nodes, **des_overrides},
        "speedup_vs_des": speedup_vs_des,
    }
    if quick:
        results["timings_ungated"] = timings
    return {
        "seed": seed,
        "quick": quick,
        "jobs": parallel_jobs,
        "params": params,
        "timings": {} if quick else timings,
        "results": results,
        "serial_checksum": serial_checksum,
        "parallel_checksum": parallel_checksum,
        "checksum": serial_checksum,
        "diverged": serial_merged != parallel_merged,
        # Only meaningful at full columnar size; quick runs are noise.
        "below_des_floor": (
            engine == "columnar" and not quick and speedup_vs_des < DES_SPEEDUP_FLOOR
        ),
    }


@_suite
def bench_scale_churn(
    *, seed: int = 0, jobs: Optional[int] = None, quick: bool = False, repeats: int = 3
) -> dict:
    """Million-task tier under node churn (sharded columnar, shm transport)."""
    return _bench_scale_regime(
        "churn", seed=seed, jobs=jobs, quick=quick, repeats=repeats
    )


@_suite
def bench_scale_spot(
    *, seed: int = 0, jobs: Optional[int] = None, quick: bool = False, repeats: int = 3
) -> dict:
    """Million-task tier with spot-check diversion (sharded columnar, shm)."""
    return _bench_scale_regime(
        "spot", seed=seed, jobs=jobs, quick=quick, repeats=repeats
    )


@_suite
def bench_scale_deadline(
    *, seed: int = 0, jobs: Optional[int] = None, quick: bool = False, repeats: int = 3
) -> dict:
    """Million-task tier under a ``max_time`` horizon (sharded columnar, shm)."""
    return _bench_scale_regime(
        "deadline", seed=seed, jobs=jobs, quick=quick, repeats=repeats
    )


def run_suite(
    name: str,
    *,
    seed: int = 0,
    jobs: Optional[int] = None,
    quick: bool = False,
    repeats: Optional[int] = None,
) -> dict:
    """Run one suite by name; returns its report payload with wall time."""
    try:
        suite = SUITES[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark suite {name!r}; choose from {sorted(SUITES)}"
        ) from None
    kwargs = dict(seed=seed, jobs=jobs, quick=quick)
    if repeats is not None:
        kwargs["repeats"] = repeats
    start = time.perf_counter()
    payload = suite(**kwargs)
    payload["wall_clock_seconds"] = time.perf_counter() - start
    return payload


def run_suites(
    names=None,
    *,
    seed: int = 0,
    jobs: Optional[int] = None,
    quick: bool = False,
    repeats: Optional[int] = None,
) -> Dict[str, dict]:
    """Run several suites (all by default) in a stable order."""
    selected = sorted(SUITES) if names is None else list(names)
    return {
        name: run_suite(name, seed=seed, jobs=jobs, quick=quick, repeats=repeats)
        for name in selected
    }
