"""Baseline comparison for benchmark reports: the no-regression gate.

``repro-bench --compare DIR`` reruns suites and judges each fresh report
against the committed baseline ``BENCH_<suite>.json`` in ``DIR``:

* **checksums must be byte-identical** -- a checksum mismatch means the
  *computed results* changed, which is a correctness bug dressed up as a
  perf number, and fails hard regardless of timings;
* **timings must not regress** beyond a tolerance -- each timing key's
  ``best_seconds`` may grow by at most ``tolerance`` (relative), because
  best-of-N is the noise-robust statistic (mean absorbs scheduler jitter);
* **parameters must match** -- comparing a quick run against a full
  baseline (or different seeds/sizes) would be meaningless, so the gate
  refuses rather than producing a garbage verdict.  Quick runs resolve
  to the suite's dedicated quick baseline (``BENCH_<name>.quick.json``),
  so both sizes can be committed and gated side by side.

Speedups below 1.0 within tolerance are reported but pass: baselines are
a *floor*, refreshed deliberately (rerun the suites and commit the new
reports) rather than ratcheted automatically.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.bench.report import report_path

__all__ = ["compare_report", "compare_to_baseline", "format_comparison"]

#: Default allowed relative slowdown before a timing counts as a regression.
DEFAULT_TOLERANCE = 0.15

#: Payload keys that must match exactly for a comparison to be meaningful.
_COMPAT_KEYS = ("seed", "quick", "params")


def compare_report(
    baseline: dict,
    current: dict,
    *,
    tolerance: float = DEFAULT_TOLERANCE,
) -> dict:
    """Judge ``current`` against ``baseline``; returns the comparison dict.

    The result carries ``verdict`` (``"ok"``, ``"regression"``,
    ``"checksum_mismatch"``, or ``"incomparable"``), per-timing speedups
    (baseline best / current best; > 1 means faster now), and enough
    context to reconstruct the judgement from the artifact alone.
    """
    if tolerance < 0.0:
        raise ValueError(f"tolerance must be non-negative, got {tolerance}")
    suite = current.get("suite") or baseline.get("suite")
    comparison: dict = {
        "suite": suite,
        "tolerance": tolerance,
        "timings": {},
        "problems": [],
    }

    for key in _COMPAT_KEYS:
        if baseline.get(key) != current.get(key):
            comparison["problems"].append(
                f"{key} differs: baseline={baseline.get(key)!r} "
                f"current={current.get(key)!r}"
            )
    if comparison["problems"]:
        comparison["verdict"] = "incomparable"
        return comparison

    if baseline.get("checksum") != current.get("checksum"):
        comparison["problems"].append(
            f"checksum mismatch: baseline={baseline.get('checksum')} "
            f"current={current.get('checksum')} -- computed results changed"
        )
        comparison["verdict"] = "checksum_mismatch"
        return comparison

    regressions: List[str] = []
    baseline_timings: Dict[str, dict] = baseline.get("timings", {})
    current_timings: Dict[str, dict] = current.get("timings", {})
    for name, base_stats in sorted(baseline_timings.items()):
        cur_stats = current_timings.get(name)
        if cur_stats is None:
            regressions.append(f"timing {name!r} missing from current report")
            continue
        base_best = float(base_stats["best_seconds"])
        cur_best = float(cur_stats["best_seconds"])
        speedup = base_best / cur_best if cur_best > 0 else float("inf")
        regressed = cur_best > base_best * (1.0 + tolerance)
        comparison["timings"][name] = {
            "baseline_best_seconds": base_best,
            "current_best_seconds": cur_best,
            "speedup": speedup,
            "regressed": regressed,
        }
        if regressed:
            regressions.append(
                f"timing {name!r} regressed: {base_best:.4f}s -> {cur_best:.4f}s "
                f"({cur_best / base_best - 1.0:+.1%}, tolerance {tolerance:.0%})"
            )
    comparison["problems"].extend(regressions)
    comparison["verdict"] = "regression" if regressions else "ok"
    return comparison


def compare_to_baseline(
    name: str,
    current: dict,
    baseline_dir: Union[str, Path],
    *,
    tolerance: float = DEFAULT_TOLERANCE,
) -> Optional[dict]:
    """Compare suite ``name``'s fresh payload against its committed baseline.

    Returns ``None`` when ``baseline_dir`` has no report for the suite (a
    new suite is not a regression; commit its report to start gating it).

    Quick runs are judged against the suite's *quick* baseline
    (``BENCH_<name>.quick.json``), full runs against the full one, so a
    per-PR smoke gate and a nightly full gate can share one baseline
    directory without ever comparing across sizes.
    """
    path = report_path(name, baseline_dir, quick=bool(current.get("quick")))
    if not path.exists():
        return None
    baseline = json.loads(path.read_text())
    document = dict(current)
    document.setdefault("suite", name)
    return compare_report(baseline, document, tolerance=tolerance)


def format_comparison(comparison: dict) -> str:
    """One human-readable block per suite for the CLI and CI logs."""
    lines = [f"{comparison['suite']}: {comparison['verdict'].upper()}"]
    for name, entry in sorted(comparison.get("timings", {}).items()):
        marker = "REGRESSED" if entry["regressed"] else "ok"
        lines.append(
            f"  {name:20s} {entry['baseline_best_seconds']:.4f}s -> "
            f"{entry['current_best_seconds']:.4f}s  "
            f"x{entry['speedup']:.2f}  [{marker}]"
        )
    for problem in comparison.get("problems", []):
        lines.append(f"  ! {problem}")
    return "\n".join(lines)
