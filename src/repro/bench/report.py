"""Schema-versioned benchmark reports (``BENCH_<name>.json``).

The schema is the contract CI depends on: bump :data:`SCHEMA_VERSION`
whenever a field changes meaning, so downstream trajectory tooling can
tell eras apart instead of silently comparing incompatible numbers.

Quick-mode runs write ``BENCH_<name>.quick.json`` instead, so a suite
can commit *two* baselines -- the full-size one for nightly/dispatch
runs and the quick one for the per-PR smoke gate -- without either
overwriting the other.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from pathlib import Path
from typing import Optional, Union

#: Bump on any incompatible change to the report layout.
SCHEMA_VERSION = 1


def machine_info() -> dict:
    """Where the numbers came from; perf is meaningless without this."""
    return {
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def report_path(
    name: str,
    output_dir: Union[str, Path] = ".",
    *,
    quick: bool = False,
) -> Path:
    """The canonical location of one suite's report (or quick report)."""
    suffix = ".quick.json" if quick else ".json"
    return Path(output_dir) / f"BENCH_{name}{suffix}"


def write_report(
    name: str,
    payload: dict,
    *,
    output_dir: Union[str, Path] = ".",
    quick: Optional[bool] = None,
) -> Path:
    """Write one suite's report; returns the path written.

    The payload is wrapped with the schema version and machine info; the
    suite supplies the seed, timings, results, and checksum fields.
    ``quick`` defaults to the payload's own ``quick`` flag, so quick runs
    land in ``BENCH_<name>.quick.json`` automatically.
    """
    if quick is None:
        quick = bool(payload.get("quick"))
    document = {
        "schema_version": SCHEMA_VERSION,
        "suite": name,
        "machine": machine_info(),
        **payload,
    }
    path = report_path(name, output_dir, quick=quick)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path
