"""Schema-versioned benchmark reports (``BENCH_<name>.json``).

The schema is the contract CI depends on: bump :data:`SCHEMA_VERSION`
whenever a field changes meaning, so downstream trajectory tooling can
tell eras apart instead of silently comparing incompatible numbers.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from pathlib import Path
from typing import Union

#: Bump on any incompatible change to the report layout.
SCHEMA_VERSION = 1


def machine_info() -> dict:
    """Where the numbers came from; perf is meaningless without this."""
    return {
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def report_path(name: str, output_dir: Union[str, Path] = ".") -> Path:
    """The canonical location of one suite's report."""
    return Path(output_dir) / f"BENCH_{name}.json"


def write_report(
    name: str,
    payload: dict,
    *,
    output_dir: Union[str, Path] = ".",
) -> Path:
    """Write one suite's report; returns the path written.

    The payload is wrapped with the schema version and machine info; the
    suite supplies the seed, timings, results, and checksum fields.
    """
    document = {
        "schema_version": SCHEMA_VERSION,
        "suite": name,
        "machine": machine_info(),
        **payload,
    }
    path = report_path(name, output_dir)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path
