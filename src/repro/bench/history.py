"""Append-only benchmark history (``benchmarks/history.jsonl``).

Baselines (:mod:`repro.bench.compare`) answer "did this PR regress?";
the history answers "how did we get here?" -- one JSON line per suite
run, appended by ``repro-bench --history PATH``, carrying just enough to
plot a performance trajectory across commits: the suite, its gated
best-seconds, the correctness checksum, the git revision, and a
timestamp.

Rows are schema-versioned independently of the report schema, so the
trajectory tooling can tell eras apart; the file is plain JSONL so a
truncated last line (a killed CI job) never corrupts earlier rows --
readers skip lines that fail to parse.
"""

from __future__ import annotations

import json
import subprocess
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

#: Bump on any incompatible change to the row layout.
HISTORY_SCHEMA_VERSION = 1


def current_git_sha(cwd: Optional[Union[str, Path]] = None) -> str:
    """The repo's HEAD revision, or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            cwd=cwd,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def history_row(
    name: str,
    payload: Dict[str, Any],
    *,
    timestamp: str,
    git_sha: str,
) -> Dict[str, Any]:
    """One history row for a suite's report payload.

    The timestamp is injected, never read from a clock here, so rows are
    a pure function of their inputs (and tests can pin them).
    """
    return {
        "schema_version": HISTORY_SCHEMA_VERSION,
        "suite": name,
        "quick": bool(payload.get("quick")),
        "seed": payload.get("seed"),
        "checksum": payload.get("checksum"),
        "best_seconds": {
            timing: stats["best_seconds"]
            for timing, stats in payload.get("timings", {}).items()
        },
        "wall_clock_seconds": payload.get("wall_clock_seconds"),
        "git_sha": git_sha,
        "timestamp": timestamp,
    }


def append_history(
    path: Union[str, Path],
    name: str,
    payload: Dict[str, Any],
    *,
    timestamp: Optional[str] = None,
    git_sha: Optional[str] = None,
) -> Dict[str, Any]:
    """Append one row for ``payload`` to the JSONL file at ``path``.

    Creates the file (and parents) on first use.  Returns the row
    written.  ``timestamp`` defaults to the current UTC time in ISO-8601
    and ``git_sha`` to the checkout's HEAD -- both injectable for tests.
    """
    if timestamp is None:
        timestamp = datetime.now(timezone.utc).isoformat(timespec="seconds")
    if git_sha is None:
        git_sha = current_git_sha()
    row = history_row(name, payload, timestamp=timestamp, git_sha=git_sha)
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("a", encoding="utf-8") as stream:
        stream.write(json.dumps(row, sort_keys=True) + "\n")
    return row


def read_history(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """All parseable rows at ``path`` (skipping corrupt/truncated lines)."""
    target = Path(path)
    if not target.exists():
        return []
    rows = []
    for line in target.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            rows.append(json.loads(line))
        except json.JSONDecodeError:
            continue
    return rows
