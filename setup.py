"""Legacy setup shim: lets ``pip install -e .`` work offline, where the
environment lacks the ``wheel`` package required by the PEP 517 editable
path.  All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
