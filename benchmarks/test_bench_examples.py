"""Benchmark: recompute Table E1 (the paper's inline worked examples)."""

import pytest

from repro.experiments import examples_table


@pytest.mark.benchmark(group="examples")
def test_bench_examples_table(benchmark):
    rows = benchmark(examples_table.compute)
    assert rows, "no example rows produced"
    disagreements = [row.claim for row in rows if not row.agrees]
    assert not disagreements, f"examples disagree with the paper: {disagreements}"
