"""Benchmark: regenerate Figure 5(c) (improvement over TR vs r)."""

import pytest

from repro.experiments import figure5c


@pytest.mark.benchmark(group="figure5c")
def test_bench_figure5c(benchmark):
    result = benchmark(figure5c.compute)
    pr_points = result.series_by_name("PR improvement").points
    ir_points = result.series_by_name("IR improvement").points
    pr = {p.cost: p.reliability for p in pr_points}
    ir = {p.cost: p.reliability for p in ir_points}

    # PR improvement rises monotonically and approaches 2.0.
    ordered = [pr[r] for r in sorted(pr)]
    assert ordered == sorted(ordered)
    assert 1.8 < ordered[-1] <= 2.0

    # IR: >= ~1.6 near r = 0.55, peak > 2.5 around r ~ 0.86-0.93, easing
    # off as r -> 1 (paper: 1.6 / 2.8 / 2.4).
    ir_ordered = [(r, ir[r]) for r in sorted(ir)]
    assert ir_ordered[0][1] >= 1.5
    peak_r, peak_value = max(ir_ordered, key=lambda rv: rv[1])
    assert 0.8 <= peak_r <= 0.95
    assert peak_value > 2.5
    assert ir_ordered[-1][1] < peak_value

    # IR always beats PR.
    for r in pr:
        assert ir[r] > pr[r]


@pytest.mark.benchmark(group="figure5c")
def test_bench_figure5c_simulation_check(benchmark):
    result = benchmark(
        figure5c.simulate_check,
        r_values=(0.7,),
        tasks=2_000,
        nodes=300,
        replications=1,
    )
    point = result.series[0].points[0]
    assert 1.6 < point.reliability < 2.4  # analytic value is ~2.03
