# reprolint: disable-file=RL003 -- tests assert exact values of seeded, deterministic computations on purpose
"""Benchmark: regenerate Figure 6 (response time vs cost factor)."""

import pytest

from repro.experiments import figure6


def regenerate():
    return figure6.compute(
        ks=(3, 9, 19), ds=(2, 4, 6), tasks=2_000, nodes=300, replications=1, seed=6
    )


@pytest.mark.benchmark(group="figure6")
def test_bench_figure6(benchmark):
    result = benchmark(regenerate)
    tr = {p.label: p for p in result.series_by_name("TR").points}
    pr = {p.label: p for p in result.series_by_name("PR").points}
    ir = result.series_by_name("IR").points

    # PR responds slower than TR at the same k; the paper measures up to
    # 2.5x across its instances.
    for label, pr_point in pr.items():
        ratio = pr_point.reliability / tr[label].reliability
        assert 1.1 < ratio < 3.2

    # IR at comparable cost: the paper's 1.4-2.8x band (with headroom for
    # the reduced scale's noise).
    tr_points = list(tr.values())
    for point in ir:
        if point.cost < 2.5:
            continue  # degenerate small-d points
        nearest = min(tr_points, key=lambda t: abs(t.cost - point.cost))
        ratio = point.reliability / nearest.reliability
        assert 1.2 < ratio < 3.5

    # Loaded measurements stay near the unloaded analytic model thanks to
    # follow-up dispatch priority.
    for series in result.series:
        for point in series.points:
            assert point.reliability == pytest.approx(
                point.extra["analytic_response"], rel=0.2
            )
