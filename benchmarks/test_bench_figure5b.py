"""Benchmark: regenerate Figure 5(b) (volunteer deployment on synthetic
PlanetLab), reduced to two problems per point and 12-variable formulas."""

import math

import pytest

from repro.experiments import figure5b


def regenerate():
    return figure5b.compute(
        ks=(3, 9), ds=(2, 4), sat_vars=12, tasks=60, problems=2, nodes=120, seed=4
    )


@pytest.mark.benchmark(group="figure5b")
def test_bench_figure5b(benchmark):
    result = benchmark(regenerate)
    # Every point completed all its problems' tasks.
    for series in result.series:
        for point in series.points:
            assert not math.isnan(point.reliability)
    # IR(d=4) beats TR(k=9) on reliability at comparable-or-lower cost
    # (the paper's headline, on the deployment substrate).
    tr9 = next(p for p in result.series_by_name("TR").points if p.label == "k=9")
    ir4 = next(p for p in result.series_by_name("IR").points if p.label == "d=4")
    assert ir4.reliability > tr9.reliability
    assert ir4.cost < tr9.cost * 1.35
    # Derived r sits below the seeded 0.7 ceiling, consistently.
    estimates = [
        p.extra["derived_r"]
        for s in result.series
        for p in s.points
        if p.cost > 2.0 and not math.isnan(p.extra["derived_r"])
    ]
    assert estimates
    assert sum(estimates) / len(estimates) < 0.73
    assert all(0.5 < e < 0.78 for e in estimates)
