"""Benchmarks of the supporting substrates: volunteer deployment
throughput, the SAT range checkers, and grid execution.

Regression guards for the machinery the figures run on.
"""

import random

import pytest

from repro.core import IterativeRedundancy, TraditionalRedundancy
from repro.grid import GridConfig, run_grid
from repro.sat.formula import random_3sat
from repro.sat.solver import check_range, check_range_numpy, dpll_satisfiable
from repro.volunteer import PlanetLabTestbed, VolunteerConfig, run_volunteer


@pytest.mark.benchmark(group="substrates")
def test_bench_volunteer_deployment(benchmark):
    def deploy():
        return run_volunteer(
            VolunteerConfig(
                strategy=IterativeRedundancy(3),
                testbed=PlanetLabTestbed(nodes=100),
                sat_vars=12,
                tasks=60,
                seed=1,
            )
        )

    report = benchmark.pedantic(deploy, rounds=3, iterations=1)
    assert report.tasks_completed == 60


@pytest.mark.benchmark(group="substrates")
def test_bench_grid_run(benchmark):
    def execute():
        return run_grid(
            GridConfig(
                strategy=TraditionalRedundancy(3),
                tasks=1_000,
                sites=8,
                anti_affinity=True,
                seed=2,
            )
        )

    report = benchmark.pedantic(execute, rounds=3, iterations=1)
    assert report.tasks_completed == 1_000


@pytest.mark.benchmark(group="substrates")
def test_bench_sat_numpy_checker(benchmark):
    formula = random_3sat(18, 77, random.Random(3))

    def sweep():
        return check_range_numpy(formula, 0, formula.assignment_space)

    result = benchmark(sweep)
    assert result == dpll_satisfiable(formula)


@pytest.mark.benchmark(group="substrates")
def test_bench_sat_pure_python_checker(benchmark):
    formula = random_3sat(12, 51, random.Random(4))

    def sweep():
        return check_range(formula, 0, formula.assignment_space)

    result = benchmark(sweep)
    assert result == check_range_numpy(formula, 0, formula.assignment_space)
