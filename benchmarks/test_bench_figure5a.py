# reprolint: disable-file=RL003 -- tests assert exact values of seeded, deterministic computations on purpose
"""Benchmark: regenerate Figure 5(a) (DES reliability vs cost, r = 0.7).

Reduced scale (one replication, 2,000 tasks, 300 nodes, three points per
technique) so the benchmark stays in seconds; the CLI's ``--scale full``
runs the paper-sized version.
"""

import pytest

from repro.experiments import figure5a


def regenerate():
    return figure5a.compute(
        ks=(3, 9, 19), ds=(2, 4, 6), tasks=2_000, nodes=300, replications=1, seed=2
    )


@pytest.mark.benchmark(group="figure5a")
def test_bench_figure5a(benchmark):
    result = benchmark(regenerate)
    for series in result.series:
        for point in series.points:
            # The simulation tracks the closed forms (paper: "closely
            # agrees with our analytical predictions").
            assert point.cost == pytest.approx(point.extra["analytic_cost"], rel=0.06)
            assert point.reliability == pytest.approx(
                point.extra["analytic_reliability"], abs=0.035
            )
    # Ordering at the shared ~9x cost point: IR(d=4) > TR(k=9).
    tr9 = next(p for p in result.series_by_name("TR").points if p.label == "k=9")
    ir4 = next(p for p in result.series_by_name("IR").points if p.label == "d=4")
    assert abs(ir4.cost - tr9.cost) < 1.0
    assert ir4.reliability > tr9.reliability
