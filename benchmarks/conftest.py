"""Benchmark-suite configuration.

Each benchmark regenerates one of the paper's evaluation artefacts (a
figure or the inline worked examples) at a reduced-but-faithful scale, and
asserts the paper's qualitative claims about it on the produced data.  Run
with::

    pytest benchmarks/ --benchmark-only
"""
