# reprolint: disable-file=RL003 -- tests assert exact values of seeded, deterministic computations on purpose
"""Benchmark: regenerate Figure 3 (analytic reliability vs cost, r = 0.7)."""

import pytest

from repro.experiments import figure3


@pytest.mark.benchmark(group="figure3")
def test_bench_figure3(benchmark):
    result = benchmark(figure3.compute)
    tr, pr, ir = result.series
    # Equal k: PR matches TR's reliability at lower cost.
    for tr_point, pr_point in zip(tr.points, pr.points):
        assert pr_point.reliability == pytest.approx(tr_point.reliability)
        if tr_point.cost > 1:
            assert pr_point.cost < tr_point.cost
    # The k = 19 anchor points of the paper.
    k19_tr = next(p for p in tr.points if p.label == "k=19")
    k19_pr = next(p for p in pr.points if p.label == "k=19")
    d4_ir = next(p for p in ir.points if p.label == "d=4")
    assert k19_tr.reliability == pytest.approx(0.967, abs=0.001)
    assert k19_pr.cost == pytest.approx(14.17, abs=0.05)
    assert d4_ir.cost == pytest.approx(9.35, abs=0.05)
    assert d4_ir.reliability == pytest.approx(0.967, abs=0.001)


@pytest.mark.benchmark(group="figure3")
def test_bench_figure3_render(benchmark):
    result = figure3.compute()
    text = benchmark(figure3.render, result)
    assert "Figure 3" in text
