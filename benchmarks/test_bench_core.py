"""Micro-benchmarks of the core primitives the figures are built from.

Not a paper artefact, but useful regression guards: the DES task-server
hot path, the strategy decision loop, and the analytic evaluators.
"""

import random

import pytest

from repro.core import IterativeRedundancy, ProgressiveRedundancy, analysis
from repro.core.runner import bernoulli_source, monte_carlo, run_task
from repro.dca import DcaConfig, run_dca


@pytest.mark.benchmark(group="core")
def test_bench_iterative_monte_carlo(benchmark):
    est = benchmark(
        monte_carlo, lambda: IterativeRedundancy(4), 0.7, 2_000, seed=1
    )
    assert est.cost_factor == pytest.approx(analysis.iterative_cost(0.7, 4), rel=0.1)


@pytest.mark.benchmark(group="core")
def test_bench_progressive_cost_closed_form(benchmark):
    value = benchmark(analysis.progressive_cost, 0.7, 39)
    assert value == pytest.approx(analysis.progressive_cost_dp(0.7, 39), rel=1e-9)


@pytest.mark.benchmark(group="core")
def test_bench_des_throughput(benchmark):
    def run():
        return run_dca(
            DcaConfig(
                strategy=ProgressiveRedundancy(9),
                tasks=2_000,
                nodes=300,
                reliability=0.7,
                seed=3,
            )
        )

    report = benchmark.pedantic(run, rounds=3, iterations=1)
    assert report.tasks_completed == 2_000


@pytest.mark.benchmark(group="core")
def test_bench_single_task_decision_loop(benchmark):
    rng = random.Random(0)

    def one_task():
        return run_task(IterativeRedundancy(4), bernoulli_source(rng, 0.7))

    verdict = benchmark(one_task)
    assert verdict.jobs_used >= 4
